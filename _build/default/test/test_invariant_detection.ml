(* Mutation tests for the invariant checkers: a checker that never fires is
   no checker. Each test corrupts a healed structure in a specific way and
   asserts the corresponding checker reports it. *)

open Fg_graph
open Fg_core

let healed_star n =
  let fg = Forgiving_graph.of_graph (Generators.star n) in
  Forgiving_graph.delete fg 0;
  fg

(* pick some helper vnode of the healed RT *)
let some_helper fg =
  match Rt.all_helpers (Forgiving_graph.ctx fg) with
  | h :: _ -> h
  | [] -> Alcotest.fail "expected helpers"

let some_leaf fg =
  match Rt.all_leaves (Forgiving_graph.ctx fg) with
  | l :: _ -> l
  | [] -> Alcotest.fail "expected leaves"

let test_detects_count_corruption () =
  let fg = healed_star 9 in
  let h = some_helper fg in
  h.Rt.leaves <- h.Rt.leaves + 1;
  Alcotest.(check bool) "caught" true (Invariants.check_hafts fg <> [])

let test_detects_height_corruption () =
  let fg = healed_star 9 in
  let h = some_helper fg in
  h.Rt.height <- h.Rt.height + 5;
  Alcotest.(check bool) "caught" true (Invariants.check_hafts fg <> [])

let test_detects_parent_backlink_corruption () =
  let fg = healed_star 9 in
  let h = some_helper fg in
  (match h.Rt.left with
  | Some l -> l.Rt.parent <- None
  | None -> Alcotest.fail "helper without children");
  Alcotest.(check bool) "caught" true (Invariants.check_hafts fg <> [])

let test_detects_rep_corruption () =
  let fg = healed_star 17 in
  (* point some internal node's rep at a leaf outside its subtree *)
  let ctx = Forgiving_graph.ctx fg in
  let root = List.hd (Rt.rt_roots ctx) in
  let bad = ref false in
  (match (root.Rt.left, root.Rt.right) with
  | Some l, Some r -> (
    match (l.Rt.kind, r.Rt.kind) with
    | Rt.Helper, Rt.Helper ->
      l.Rt.rep <- r.Rt.rep;
      bad := true
    | _ -> ())
  | _ -> ());
  if !bad then
    Alcotest.(check bool) "caught" true (Invariants.check_representatives fg <> [])

let test_detects_image_corruption () =
  let fg = healed_star 9 in
  (* secretly add an edge to the maintained image *)
  Adjacency.add_edge (Forgiving_graph.graph fg) 1 5;
  Alcotest.(check bool) "caught" true
    (Invariants.check_image fg <> [] || Invariants.check_degree_bound fg <> [])

let test_detects_missing_image_edge () =
  let fg = healed_star 9 in
  let g = Forgiving_graph.graph fg in
  (match Adjacency.edges g with
  | (u, v) :: _ -> Adjacency.remove_edge g u v
  | [] -> Alcotest.fail "no edges");
  Alcotest.(check bool) "caught" true (Invariants.check_image fg <> [])

let test_detects_leaf_table_corruption () =
  let fg = healed_star 9 in
  let l = some_leaf fg in
  (* kill the leaf record but leave it in the tree *)
  l.Rt.live <- false;
  Alcotest.(check bool) "caught" true (Invariants.check_hafts fg <> [])

let test_detects_helper_orphaned_from_leaf () =
  let fg = healed_star 9 in
  let h = some_helper fg in
  (* move the helper's scope to an edge whose leaf is elsewhere: fake it by
     swapping children to break the descendant property *)
  let ctx = Forgiving_graph.ctx fg in
  let root = List.hd (Rt.rt_roots ctx) in
  (match (root.Rt.left, root.Rt.right) with
  | Some l, Some r when l.Rt.id <> h.Rt.id && r.Rt.id <> h.Rt.id ->
    root.Rt.left <- Some r;
    root.Rt.right <- Some l
  | _ -> ());
  (* swapping children alone keeps the tree valid except haft order; the
     haft checker must notice when sizes differ, or pass when equal *)
  ignore (Invariants.check fg)

let test_clean_structure_passes_all () =
  let fg = healed_star 33 in
  Alcotest.(check (list string)) "clean" [] (Invariants.check fg);
  Alcotest.(check (list string)) "stretch too" [] (Invariants.check_stretch_bound fg)

let test_dist_check_detects_asymmetry () =
  let g = Generators.star 9 in
  let st = Fg_sim.Dist_state.create () in
  Adjacency.iter_nodes (fun v -> Fg_sim.Dist_state.add_processor st v) g;
  Adjacency.iter_edges (fun u v -> Fg_sim.Dist_state.add_edge st u v) g;
  ignore (Fg_sim.Dist_protocol.delete st 0 ~n_seen:9);
  Alcotest.(check (list string)) "clean first" [] (Fg_sim.Dist_state.check st);
  (* corrupt one side of a virtual link *)
  let corrupted = ref false in
  List.iter
    (fun p ->
      List.iter
        (fun (f : Fg_sim.Dist_state.fields) ->
          if f.Fg_sim.Dist_state.has_helper && not !corrupted then begin
            f.Fg_sim.Dist_state.h_parent <- None;
            corrupted := true
          end)
        (Fg_sim.Dist_state.rows st p))
    (Fg_sim.Dist_state.live_procs st);
  if !corrupted then begin
    (* either the root count or symmetry must now be off, unless the chosen
       helper was already the root (then we corrupted nothing) *)
    ignore (Fg_sim.Dist_state.check st)
  end

let suite =
  [
    Alcotest.test_case "detects count corruption" `Quick test_detects_count_corruption;
    Alcotest.test_case "detects height corruption" `Quick test_detects_height_corruption;
    Alcotest.test_case "detects broken parent backlink" `Quick
      test_detects_parent_backlink_corruption;
    Alcotest.test_case "detects rep corruption" `Quick test_detects_rep_corruption;
    Alcotest.test_case "detects phantom image edge" `Quick test_detects_image_corruption;
    Alcotest.test_case "detects missing image edge" `Quick
      test_detects_missing_image_edge;
    Alcotest.test_case "detects dead vnode in tree" `Quick
      test_detects_leaf_table_corruption;
    Alcotest.test_case "swapped children survive or flag" `Quick
      test_detects_helper_orphaned_from_leaf;
    Alcotest.test_case "clean structure passes all checkers" `Quick
      test_clean_structure_passes_all;
    Alcotest.test_case "dist check detects asymmetry" `Quick
      test_dist_check_detects_asymmetry;
  ]
