(* Tests for the constructive router (Theorem 1.2 as an algorithm). *)

open Fg_graph
open Fg_core

let is_valid_walk g = function
  | [] -> false
  | walk ->
    let rec ok = function
      | a :: (b :: _ as rest) -> Adjacency.mem_edge g a b && ok rest
      | [ _ ] | [] -> true
    in
    ok walk

let check_route fg x y =
  match Routing.route fg x y with
  | None -> Alcotest.failf "no route %d -> %d" x y
  | Some walk ->
    let g = Forgiving_graph.graph fg in
    Alcotest.(check int) "starts at x" x (List.hd walk);
    Alcotest.(check int) "ends at y" y (List.nth walk (List.length walk - 1));
    Alcotest.(check bool)
      (Printf.sprintf "valid walk %d->%d" x y)
      true
      (x = y || is_valid_walk g walk);
    let d' =
      match Bfs.distance (Forgiving_graph.gprime fg) x y with
      | Some d -> d
      | None -> Alcotest.fail "G' disconnected"
    in
    Alcotest.(check bool)
      (Printf.sprintf "length %d within bound" (List.length walk - 1))
      true
      (List.length walk - 1 <= max 1 (Routing.length_bound fg d'));
    walk

let test_route_identity () =
  let fg = Forgiving_graph.of_graph (Generators.ring 6) in
  let walk = check_route fg 2 2 in
  Alcotest.(check (list int)) "self" [ 2 ] walk

let test_route_no_deletions () =
  let fg = Forgiving_graph.of_graph (Generators.ring 8) in
  let walk = check_route fg 0 3 in
  Alcotest.(check (list int)) "direct G' path" [ 0; 1; 2; 3 ] walk

let test_route_through_one_rt () =
  let fg = Forgiving_graph.of_graph (Generators.star 9) in
  Forgiving_graph.delete fg 0;
  (* every satellite pair must route through the RT *)
  List.iter
    (fun y -> ignore (check_route fg 1 y))
    [ 2; 3; 4; 5; 6; 7; 8 ]

let test_route_through_merged_rts () =
  (* delete a whole middle segment of a path: one merged RT spans it *)
  let fg = Forgiving_graph.of_graph (Generators.path 10) in
  List.iter (Forgiving_graph.delete fg) [ 3; 4; 5; 6 ];
  let walk = check_route fg 0 9 in
  Alcotest.(check bool) "skips the dead" true
    (List.for_all (fun v -> Forgiving_graph.is_alive fg v) walk)

let test_route_unreachable () =
  let g = Adjacency.of_edges [ (0, 1); (2, 3) ] in
  let fg = Forgiving_graph.of_graph g in
  Alcotest.(check bool) "none" true (Routing.route fg 0 3 = None)

let test_route_rejects_dead_endpoint () =
  let fg = Forgiving_graph.of_graph (Generators.ring 6) in
  Forgiving_graph.delete fg 2;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Routing.route fg 2 0);
       false
     with Invalid_argument _ -> true)

let test_route_all_pairs_after_churn () =
  let rng = Rng.create 23 in
  let g = Generators.erdos_renyi rng 40 0.12 in
  let fg = Forgiving_graph.of_graph g in
  (* delete 15 random nodes *)
  for _ = 1 to 15 do
    let live = Forgiving_graph.live_nodes fg in
    if List.length live > 2 then Forgiving_graph.delete fg (Rng.pick rng live)
  done;
  Forgiving_graph.insert fg 100 [ List.hd (Forgiving_graph.live_nodes fg) ];
  let live = List.sort compare (Forgiving_graph.live_nodes fg) in
  List.iter
    (fun x -> List.iter (fun y -> if x < y then ignore (check_route fg x y)) live)
    live

let test_route_length_near_optimal_on_star () =
  (* after a star heal, routed walks are within 2*height of optimal *)
  let n = 65 in
  let fg = Forgiving_graph.of_graph (Generators.star n) in
  Forgiving_graph.delete fg 0;
  let walk = check_route fg 1 64 in
  Alcotest.(check bool) "short" true (List.length walk - 1 <= 2 * 6)

let suite =
  [
    Alcotest.test_case "route: identity" `Quick test_route_identity;
    Alcotest.test_case "route: no deletions" `Quick test_route_no_deletions;
    Alcotest.test_case "route: through one RT" `Quick test_route_through_one_rt;
    Alcotest.test_case "route: through merged RTs" `Quick test_route_through_merged_rts;
    Alcotest.test_case "route: unreachable" `Quick test_route_unreachable;
    Alcotest.test_case "route: rejects dead endpoints" `Quick
      test_route_rejects_dead_endpoint;
    Alcotest.test_case "route: all pairs after churn" `Quick
      test_route_all_pairs_after_churn;
    Alcotest.test_case "route: near-optimal on star" `Quick
      test_route_length_near_optimal_on_star;
  ]
