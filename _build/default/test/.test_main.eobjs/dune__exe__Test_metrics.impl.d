test/test_metrics.ml: Adjacency Alcotest Degree_metric Fg_graph Fg_metrics Generators List Rng Stretch Summary
