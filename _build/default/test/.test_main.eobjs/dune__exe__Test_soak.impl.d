test/test_soak.ml: Adjacency Alcotest Array Bfs Connectivity Fg_core Fg_graph Fg_metrics Fg_sim Generators List Option Printf QCheck2 QCheck_alcotest Rng
