test/test_forgiving.ml: Adjacency Alcotest Array Connectivity Fg_core Fg_graph Forgiving_graph Generators Invariants List Printf QCheck2 QCheck_alcotest Rng
