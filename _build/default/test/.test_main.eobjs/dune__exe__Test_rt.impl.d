test/test_rt.ml: Adjacency Alcotest Fg_core Fg_graph Fg_haft Forgiving_graph Fun Generators Invariants List Printf Rng Rt
