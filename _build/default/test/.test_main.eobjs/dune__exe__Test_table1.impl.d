test/test_table1.ml: Alcotest Array Fg_core Fg_graph Fg_sim Generators List Printf Rng
