test/test_persistent.ml: Adjacency Alcotest Fg_graph Fg_sim Generators List Persistent_graph QCheck2 QCheck_alcotest Rng
