test/test_routing.ml: Adjacency Alcotest Bfs Fg_core Fg_graph Forgiving_graph Generators List Printf Rng Routing
