test/test_adversary.ml: Adjacency Alcotest Fg_adversary Fg_baselines Fg_graph Generators List Rng
