test/test_invariant_detection.ml: Adjacency Alcotest Fg_core Fg_graph Fg_sim Forgiving_graph Generators Invariants List Rt
