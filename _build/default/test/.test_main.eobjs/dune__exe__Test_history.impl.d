test/test_history.ml: Adjacency Alcotest Connectivity Fg_core Fg_graph Format Generators List Persistent_graph String
