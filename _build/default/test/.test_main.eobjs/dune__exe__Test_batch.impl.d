test/test_batch.ml: Adjacency Alcotest Array Connectivity Fg_core Fg_graph Fg_sim Generators List Printf QCheck2 QCheck_alcotest Rng
