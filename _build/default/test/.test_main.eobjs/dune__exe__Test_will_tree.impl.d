test/test_will_tree.ml: Adjacency Alcotest Connectivity Diameter Fg_adversary Fg_baselines Fg_graph Generators List Printf QCheck2 QCheck_alcotest Rng
