test/test_haft.ml: Alcotest Fg_haft Haft Int List Printf QCheck2 QCheck_alcotest
