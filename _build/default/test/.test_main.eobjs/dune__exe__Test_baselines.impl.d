test/test_baselines.ml: Adjacency Alcotest Cascade Connectivity Diameter Fg_baselines Fg_core Fg_graph Forgiving_tree Generators Healer List Naive Printf Registry Rng
