test/test_sim.ml: Adjacency Alcotest Engine Fg_core Fg_graph Fg_sim Generators List Netsim Printf Protocol Rng
