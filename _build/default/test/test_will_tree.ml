(* Tests for the Will-based Forgiving Tree (PODC'08 baseline). *)

open Fg_graph
module Wt = Fg_baselines.Will_tree

let check_ok label t =
  match Wt.check t with
  | [] -> ()
  | errs -> Alcotest.failf "%s: %d violations, first: %s" label (List.length errs) (List.hd errs)

let test_fresh_tree () =
  let tree = Generators.binary_tree 15 in
  let t = Wt.create tree in
  check_ok "fresh" t;
  Alcotest.(check bool) "image = tree" true (Adjacency.equal tree (Wt.graph t));
  Alcotest.(check int) "nobody simulates" 0
    (List.fold_left (fun a p -> a + Wt.simulates t p) 0 (Wt.live_nodes t))

let test_delete_leaf () =
  let t = Wt.create (Generators.path 5) in
  Wt.delete t 4;
  check_ok "leaf" t;
  Alcotest.(check int) "four live" 4 (List.length (Wt.live_nodes t));
  Alcotest.(check bool) "connected" true (Connectivity.is_connected (Wt.graph t))

let test_delete_internal () =
  (* path rooted at 0: deleting 2 reconnects 1-3 via the will *)
  let t = Wt.create (Generators.path 5) in
  Wt.delete t 2;
  check_ok "internal" t;
  Alcotest.(check bool) "connected" true (Connectivity.is_connected (Wt.graph t))

let test_delete_root_of_star () =
  let n = 17 in
  let t = Wt.create (Generators.star n) in
  Wt.delete t 0;
  check_ok "star root" t;
  let g = Wt.graph t in
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g);
  (* additive degree: original satellites had degree 1 -> at most 4 *)
  Alcotest.(check bool) "degrees <= 1 + 3" true
    (List.for_all (fun v -> Adjacency.degree g v <= 4) (Adjacency.nodes g));
  (* depth log: diameter of the replacement ~ 2 ceil(log2 16) *)
  Alcotest.(check bool) "diameter logarithmic" true (Diameter.exact g <= 2 * 4 + 2)

let test_simulator_injective_under_attack () =
  let rng = Rng.create 7 in
  let t = Wt.create (Fg_baselines.Forgiving_tree.spanning_tree
                       (Generators.erdos_renyi rng 48 0.12)) in
  for _ = 1 to 24 do
    let live = Wt.live_nodes t in
    if List.length live > 3 then begin
      Wt.delete t (Rng.pick rng live);
      (match Wt.check t with
      | [] -> ()
      | e :: _ -> Alcotest.fail e);
      (* the PODC'08 invariant: <= 1 virtual node per processor *)
      List.iter
        (fun p ->
          Alcotest.(check bool) "at most one" true (Wt.simulates t p <= 1))
        (Wt.live_nodes t)
    end
  done

let test_degree_additive_bound () =
  (* kill half a BA graph's spanning tree hub-first: every survivor stays
     within original tree degree + 3 (checked inside Wt.check, asserted
     explicitly here against the full graph degree too) *)
  let rng = Rng.create 11 in
  let g0 = Generators.barabasi_albert rng 64 2 in
  let h = Fg_baselines.Forgiving_tree.healer g0 in
  ignore
    (Fg_adversary.Churn.delete_fraction rng h ~fraction:0.5
       ~del:Fg_adversary.Adversary.Max_degree);
  let g = h.Fg_baselines.Healer.graph () in
  let gp = h.Fg_baselines.Healer.gprime () in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d: %d <= %d + 3" v (Adjacency.degree g v)
           (Adjacency.degree gp v))
        true
        (Adjacency.degree g v <= Adjacency.degree gp v + 3))
    (h.Fg_baselines.Healer.live_nodes ())

let test_delete_all_but_two () =
  let t = Wt.create (Generators.binary_tree 16) in
  for v = 0 to 13 do
    Wt.delete t v;
    check_ok (Printf.sprintf "after %d" v) t
  done;
  Alcotest.(check int) "two left" 2 (List.length (Wt.live_nodes t))

let test_delete_rejects_dead () =
  let t = Wt.create (Generators.path 4) in
  Wt.delete t 1;
  Alcotest.(check bool) "raises" true
    (try
       Wt.delete t 1;
       false
     with Invalid_argument _ -> true)

let test_forest_input () =
  let g = Adjacency.of_edges [ (0, 1); (2, 3) ] in
  let t = Wt.create g in
  check_ok "forest" t;
  Wt.delete t 0;
  check_ok "forest after delete" t;
  Alcotest.(check int) "two components" 2
    (Connectivity.num_components (Wt.graph t))

let prop_will_tree_invariants =
  QCheck2.Test.make ~name:"will tree keeps PODC'08 invariants" ~count:40
    QCheck2.Gen.(tup2 (int_range 0 9999) (int_range 6 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let tree = Generators.random_tree rng n in
      let t = Wt.create tree in
      let ok = ref true in
      for _ = 1 to n / 2 do
        let live = Wt.live_nodes t in
        if List.length live > 2 && !ok then begin
          Wt.delete t (Rng.pick rng live);
          if Wt.check t <> [] then ok := false
        end
      done;
      !ok)

let props = List.map QCheck_alcotest.to_alcotest [ prop_will_tree_invariants ]

let suite =
  [
    Alcotest.test_case "fresh tree" `Quick test_fresh_tree;
    Alcotest.test_case "delete leaf" `Quick test_delete_leaf;
    Alcotest.test_case "delete internal" `Quick test_delete_internal;
    Alcotest.test_case "delete star root" `Quick test_delete_root_of_star;
    Alcotest.test_case "simulator injectivity under attack" `Quick
      test_simulator_injective_under_attack;
    Alcotest.test_case "degree additive +3" `Quick test_degree_additive_bound;
    Alcotest.test_case "delete all but two" `Quick test_delete_all_but_two;
    Alcotest.test_case "rejects dead victims" `Quick test_delete_rejects_dead;
    Alcotest.test_case "forest input" `Quick test_forest_input;
  ]
  @ props
