(* White-box tests of the reconstruction-tree engine: traces, fragments,
   merge mechanics, policies. *)

open Fg_graph
open Fg_core

let star_fg ?policy n =
  let fg = Forgiving_graph.of_graph ?policy (Generators.star n) in
  fg

let test_trace_star () =
  let fg = star_fg 9 in
  let trace = Forgiving_graph.delete_traced fg 0 in
  (* every satellite is its own fresh anchor *)
  Alcotest.(check int) "anchors" 8 trace.Rt.ht_anchors;
  Alcotest.(check int) "notified = live neighbours" 8 trace.Rt.ht_notified;
  Alcotest.(check int) "nothing discarded" 0 trace.Rt.ht_initial_discarded;
  (* 8 singletons -> 3 merge levels (4, 2, 1 merges) *)
  Alcotest.(check (list int)) "level widths" [ 4; 2; 1 ]
    (List.map List.length trace.Rt.ht_levels);
  (* total helpers created across all levels = 7 (internal nodes of haft(8)) *)
  let created =
    List.fold_left
      (fun acc evs ->
        List.fold_left (fun a (e : Rt.merge_event) -> a + e.Rt.me_created) acc evs)
      0 trace.Rt.ht_levels
  in
  Alcotest.(check int) "7 helpers" 7 created

let test_trace_isolated () =
  let g = Adjacency.create () in
  Adjacency.add_node g 0;
  Adjacency.add_node g 1;
  let fg = Forgiving_graph.of_graph g in
  let trace = Forgiving_graph.delete_traced fg 0 in
  Alcotest.(check int) "no anchors" 0 trace.Rt.ht_anchors;
  Alcotest.(check (list (list unit))) "no levels" []
    (List.map (List.map ignore) trace.Rt.ht_levels)

let test_trace_degree_one () =
  let fg = Forgiving_graph.of_graph (Generators.path 2) in
  let trace = Forgiving_graph.delete_traced fg 1 in
  Alcotest.(check int) "one anchor" 1 trace.Rt.ht_anchors;
  (* single fresh singleton: one self-merge event with no helper creation *)
  match trace.Rt.ht_levels with
  | [ [ ev ] ] ->
    Alcotest.(check int) "no helpers" 0 ev.Rt.me_created;
    Alcotest.(check (list int)) "one leaf" [ 1 ] ev.Rt.me_left_sizes
  | _ -> Alcotest.fail "expected a single self-merge"

let test_anchors_at_most_3d () =
  (* Lemma 4: |BT_v| <= 3d. Stress with repeated adjacent deletions. *)
  let rng = Rng.create 33 in
  let g = Generators.erdos_renyi rng 48 0.15 in
  let fg = Forgiving_graph.of_graph g in
  for v = 0 to 23 do
    let d = Adjacency.degree (Forgiving_graph.gprime fg) v in
    let trace = Forgiving_graph.delete_traced fg v in
    Alcotest.(check bool)
      (Printf.sprintf "delete %d: anchors %d <= 3*%d" v trace.Rt.ht_anchors d)
      true
      (trace.Rt.ht_anchors <= max 1 (3 * d))
  done

let test_rt_root_unique_after_star () =
  let fg = star_fg 17 in
  Forgiving_graph.delete fg 0;
  match Rt.rt_roots (Forgiving_graph.ctx fg) with
  | [ root ] ->
    Alcotest.(check int) "leaves" 16 root.Rt.leaves;
    Alcotest.(check int) "height" 4 root.Rt.height;
    Alcotest.(check bool) "haft" true (Fg_haft.Haft.is_haft (Rt.to_haft root))
  | roots -> Alcotest.failf "expected one RT, got %d" (List.length roots)

let test_leaf_helper_tables () =
  let fg = star_fg 9 in
  Forgiving_graph.delete fg 0;
  let ctx = Forgiving_graph.ctx fg in
  Alcotest.(check int) "8 leaves" 8 (List.length (Rt.all_leaves ctx));
  Alcotest.(check int) "7 helpers" 7 (List.length (Rt.all_helpers ctx));
  (* each satellite simulates at most one helper (it has G'-degree 1) *)
  for v = 1 to 8 do
    Alcotest.(check bool)
      (Printf.sprintf "helper load of %d" v)
      true
      (Rt.helper_count ctx v <= 1)
  done

let test_shape_is_unique_haft () =
  (* the healed RT shape must equal the spec haft over the same leaf count,
     regardless of merge order (Lemma 1 uniqueness) *)
  let check n =
    let fg = star_fg n in
    Forgiving_graph.delete fg 0;
    match Rt.rt_roots (Forgiving_graph.ctx fg) with
    | [ root ] ->
      let spec = Fg_haft.Haft.of_list (List.init (n - 1) Fun.id) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d" n)
        true
        (Fg_haft.Haft.equal_shape (Rt.to_haft root) spec)
    | _ -> Alcotest.fail "expected one RT"
  in
  List.iter check [ 4; 6; 9; 12; 14; 23; 33 ]

let test_balanced_policy_invariants () =
  (* the Degree_balanced policy must preserve every invariant *)
  let rng = Rng.create 9 in
  let g = Generators.erdos_renyi rng 32 0.15 in
  let fg = Forgiving_graph.of_graph ~policy:Rt.Degree_balanced g in
  for v = 0 to 15 do
    Forgiving_graph.delete fg v;
    match Invariants.check fg with
    | [] -> ()
    | e :: _ -> Alcotest.failf "balanced policy, after deleting %d: %s" v e
  done

let test_balanced_policy_star_shape () =
  let fg = star_fg ~policy:Rt.Degree_balanced 17 in
  Forgiving_graph.delete fg 0;
  match Rt.rt_roots (Forgiving_graph.ctx fg) with
  | [ root ] -> Alcotest.(check int) "complete haft" 16 root.Rt.leaves
  | _ -> Alcotest.fail "expected one RT"

let test_image_no_dead_nodes () =
  let fg = star_fg 9 in
  Forgiving_graph.delete fg 0;
  Alcotest.(check bool) "0 gone from image" false
    (Adjacency.mem_node (Forgiving_graph.graph fg) 0)

let test_insert_into_healed_region () =
  (* inserting next to a node that participates in an RT must not disturb
     the RT bookkeeping *)
  let fg = star_fg 9 in
  Forgiving_graph.delete fg 0;
  Forgiving_graph.insert fg 100 [ 1; 2; 3 ];
  Alcotest.(check (list string)) "invariants" [] (Invariants.check fg);
  Forgiving_graph.delete fg 1;
  Alcotest.(check (list string)) "invariants after" [] (Invariants.check fg)

let suite =
  [
    Alcotest.test_case "trace: star deletion" `Quick test_trace_star;
    Alcotest.test_case "trace: isolated node" `Quick test_trace_isolated;
    Alcotest.test_case "trace: degree one" `Quick test_trace_degree_one;
    Alcotest.test_case "trace: anchors <= 3d" `Quick test_anchors_at_most_3d;
    Alcotest.test_case "rt: unique root after star heal" `Quick
      test_rt_root_unique_after_star;
    Alcotest.test_case "rt: leaf/helper table sizes" `Quick test_leaf_helper_tables;
    Alcotest.test_case "rt: healed shape = unique haft" `Quick test_shape_is_unique_haft;
    Alcotest.test_case "policy: balanced keeps invariants" `Quick
      test_balanced_policy_invariants;
    Alcotest.test_case "policy: balanced star shape" `Quick
      test_balanced_policy_star_shape;
    Alcotest.test_case "image: dead node dropped" `Quick test_image_no_dead_nodes;
    Alcotest.test_case "insert into healed region" `Quick test_insert_into_healed_region;
  ]
