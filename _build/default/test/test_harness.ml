(* Smoke tests for the experiment harness: every experiment runs quietly at
   reduced size and its pass-criterion holds. *)

open Fg_harness

let test_table_render () =
  let t = Table.make [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "four lines" 4 (List.length lines);
  Alcotest.(check string) "header" "a    bb" (List.nth lines 0)

let test_table_csv () =
  let t = Table.make [ "x"; "y" ] in
  Table.add_row t [ "a,b"; "c\"d" ];
  Alcotest.(check string) "quoted" "x,y\n\"a,b\",\"c\"\"d\"\n" (Table.to_csv t)

let test_ceil_log2 () =
  Alcotest.(check int) "1" 0 (Exp_common.ceil_log2 1);
  Alcotest.(check int) "2" 1 (Exp_common.ceil_log2 2);
  Alcotest.(check int) "3" 2 (Exp_common.ceil_log2 3);
  Alcotest.(check int) "1024" 10 (Exp_common.ceil_log2 1024);
  Alcotest.(check int) "1025" 11 (Exp_common.ceil_log2 1025)

let test_e1 () =
  let s = E1_haft_laws.run ~verbose:false ~max_l:512 () in
  Alcotest.(check int) "no failures" 0 s.E1_haft_laws.failures

let test_e2 () =
  let s = E2_figures.run ~verbose:false () in
  Alcotest.(check (list int)) "fig3" [ 4; 2; 1 ] s.E2_figures.fig3_strip_sizes;
  Alcotest.(check int) "fig5 leaves" 8 s.E2_figures.fig5_total_leaves;
  Alcotest.(check bool) "fig5 complete" true s.E2_figures.fig5_is_complete;
  Alcotest.(check int) "fig2 depth" 3 s.E2_figures.fig2_rt_depth;
  Alcotest.(check bool) "fig2 invariants" true s.E2_figures.fig2_invariants_ok

let test_e3 () =
  let s = E3_degree.run ~verbose:false ~sizes:[ 32; 64 ] () in
  Alcotest.(check bool) "within 4x" true s.E3_degree.all_within_4x;
  Alcotest.(check int) "rows" 48 (List.length s.E3_degree.rows)

let test_e4 () =
  let s = E4_stretch.run ~verbose:false ~sizes:[ 32; 64 ] () in
  Alcotest.(check bool) "within bound" true s.E4_stretch.all_within_bound

let test_e5 () =
  let s = E5_cost.run ~verbose:false () in
  Alcotest.(check bool) "msgs norm bounded" true (s.E5_cost.max_msgs_norm < 20.);
  Alcotest.(check bool) "rounds norm bounded" true (s.E5_cost.max_rounds_norm < 12.);
  Alcotest.(check bool) "refs norm bounded" true (s.E5_cost.max_refs_norm < 10.)

let test_e6 () =
  let s = E6_lower_bound.run ~verbose:false () in
  Alcotest.(check bool) "sandwiched" true s.E6_lower_bound.all_sandwiched;
  (* measured stretch strictly grows with n *)
  let stretches = List.map (fun r -> r.E6_lower_bound.measured_stretch) s.E6_lower_bound.rows in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing stretches)

let test_e7 () =
  let s = E7_vs_forgiving_tree.run ~verbose:false () in
  Alcotest.(check bool) "fg beats ft on stretch" true
    s.E7_vs_forgiving_tree.fg_beats_ft_stretch;
  List.iter
    (fun r ->
      let open E7_vs_forgiving_tree in
      match r.healer with
      | "fg" ->
        Alcotest.(check bool) "fg inserts" true r.supports_insert;
        Alcotest.(check int) "fg no init" 0 r.init_messages
      | "ft" ->
        Alcotest.(check bool) "ft rejects" false r.supports_insert;
        Alcotest.(check bool) "ft init > 0" true (r.init_messages > 0)
      | _ -> ())
    s.E7_vs_forgiving_tree.rows

let test_e8 () =
  let s = E8_churn.run ~verbose:false ~steps:60 () in
  Alcotest.(check bool) "all ok" true s.E8_churn.all_ok

let test_e9 () =
  let s = E9_cascade.run ~verbose:false ~n:100 () in
  Alcotest.(check bool) "fg dominates" true s.E9_cascade.fg_dominates

let test_e10 () =
  let s = E10_ablation.run ~verbose:false () in
  Alcotest.(check bool) "fg on frontier" true s.E10_ablation.fg_on_frontier;
  (* the star scenarios must show the 4x witness under both policies *)
  List.iter
    (fun r ->
      let open E10_ablation in
      if r.scenario <> "er-256-40pct" && r.scenario <> "star-17" then begin
        Alcotest.(check (float 1e-9)) (r.scenario ^ " paper") 4.0 r.paper_max_ratio;
        Alcotest.(check (float 1e-9)) (r.scenario ^ " balanced") 4.0 r.balanced_max_ratio
      end)
    s.E10_ablation.policies

let test_e11 () =
  let s = E11_span.run ~verbose:false () in
  Alcotest.(check bool) "expanders small" true s.E11_span.expanders_small;
  Alcotest.(check bool) "ring large" true s.E11_span.ring_large

let test_e0 () =
  let s = E0_workloads.run ~verbose:false ~n:64 () in
  Alcotest.(check bool) "all connected" true s.E0_workloads.all_connected;
  Alcotest.(check int) "six families" 6 (List.length s.E0_workloads.rows)

let test_e13 () =
  let s = E13_batch.run ~verbose:false () in
  Alcotest.(check bool) "batch never worse" true s.E13_batch.batch_never_worse

let test_e14 () =
  let s = E14_dist_cost.run ~verbose:false () in
  Alcotest.(check bool) "verified" true s.E14_dist_cost.all_verified

let test_e12 () =
  let s = E12_timeline.run ~verbose:false ~steps:60 () in
  Alcotest.(check int) "no violations" 0 s.E12_timeline.violations;
  Alcotest.(check int) "checked everything" 60 s.E12_timeline.steps_checked

let suite =
  [
    Alcotest.test_case "table: render" `Quick test_table_render;
    Alcotest.test_case "table: csv quoting" `Quick test_table_csv;
    Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
    Alcotest.test_case "E1 haft laws" `Quick test_e1;
    Alcotest.test_case "E2 figures" `Quick test_e2;
    Alcotest.test_case "E3 degree" `Quick test_e3;
    Alcotest.test_case "E4 stretch" `Quick test_e4;
    Alcotest.test_case "E5 cost" `Slow test_e5;
    Alcotest.test_case "E6 lower bound" `Quick test_e6;
    Alcotest.test_case "E7 vs forgiving tree" `Quick test_e7;
    Alcotest.test_case "E8 churn" `Quick test_e8;
    Alcotest.test_case "E9 cascade" `Slow test_e9;
    Alcotest.test_case "E10 ablation" `Slow test_e10;
    Alcotest.test_case "E11 span" `Quick test_e11;
    Alcotest.test_case "E12 timeline" `Quick test_e12;
    Alcotest.test_case "E0 workloads" `Quick test_e0;
    Alcotest.test_case "E13 batch" `Quick test_e13;
    Alcotest.test_case "E14 dist cost" `Slow test_e14;
  ]
