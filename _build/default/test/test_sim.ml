(* Tests for the message-passing kernel and the repair-protocol replay. *)

open Fg_graph
open Fg_sim

(* ---- kernel ---- *)

let test_netsim_empty () =
  let net = Netsim.create () in
  let stats = Netsim.run net ~handler:(fun ~src:_ ~dst:_ ~bits:_ () -> ()) ~max_rounds:10 in
  Alcotest.(check int) "rounds" 0 stats.Netsim.rounds;
  Alcotest.(check int) "messages" 0 stats.Netsim.messages

let test_netsim_chain () =
  (* a relay chain of k hops takes exactly k rounds and k messages *)
  let k = 17 in
  let net = Netsim.create () in
  let handler ~src:_ ~dst ~bits:_ remaining =
    if remaining > 0 then Netsim.send net ~bits:8 ~src:dst ~dst:(dst + 1) (remaining - 1)
  in
  Netsim.send net ~bits:8 ~src:0 ~dst:1 (k - 1);
  let stats = Netsim.run net ~handler ~max_rounds:100 in
  Alcotest.(check int) "rounds" k stats.Netsim.rounds;
  Alcotest.(check int) "messages" k stats.Netsim.messages;
  Alcotest.(check int) "bits" (8 * k) stats.Netsim.total_bits

let test_netsim_broadcast_rounds () =
  (* binary-tree broadcast over 2^d agents: d rounds *)
  let d = 6 in
  let net = Netsim.create () in
  let handler ~src:_ ~dst ~bits:_ depth =
    if depth < d then begin
      Netsim.send net ~bits:4 ~src:dst ~dst:(2 * dst) (depth + 1);
      Netsim.send net ~bits:4 ~src:dst ~dst:((2 * dst) + 1) (depth + 1)
    end
  in
  Netsim.send net ~bits:4 ~src:0 ~dst:1 1;
  let stats = Netsim.run net ~handler ~max_rounds:100 in
  Alcotest.(check int) "rounds" d stats.Netsim.rounds;
  Alcotest.(check int) "messages" ((1 lsl d) - 1) stats.Netsim.messages

let test_netsim_divergence_guard () =
  let net = Netsim.create () in
  let handler ~src:_ ~dst ~bits:_ () = Netsim.send net ~bits:1 ~src:dst ~dst () in
  Netsim.send net ~bits:1 ~src:0 ~dst:1 ();
  Alcotest.(check bool) "raises" true
    (try
       ignore (Netsim.run net ~handler ~max_rounds:50);
       false
     with Failure _ -> true)

let test_netsim_async_delays_rounds () =
  (* the same relay chain under async delivery takes >= the sync rounds *)
  let k = 10 in
  let run discipline =
    let net = Netsim.create ?discipline () in
    let handler ~src:_ ~dst ~bits:_ remaining =
      if remaining > 0 then Netsim.send net ~bits:8 ~src:dst ~dst:(dst + 1) (remaining - 1)
    in
    Netsim.send net ~bits:8 ~src:0 ~dst:1 (k - 1);
    Netsim.run net ~handler ~max_rounds:1000
  in
  let sync = run None in
  let async = run (Some (Netsim.Asynchronous (Rng.create 3, 5))) in
  Alcotest.(check int) "same messages" sync.Netsim.messages async.Netsim.messages;
  Alcotest.(check bool) "async at least as slow" true
    (async.Netsim.rounds >= sync.Netsim.rounds)

let test_flood_async_still_reaches_all () =
  let g = Generators.erdos_renyi (Rng.create 9) 40 0.12 in
  (* flood is order-insensitive: first token adopts, duplicates refused *)
  let r = Fg_sim.Flood.broadcast g ~root:0 in
  Alcotest.(check int) "all reached" (Adjacency.num_nodes g) r.Fg_sim.Flood.reached

(* ---- protocol replay ---- *)

let test_ref_bits () =
  Alcotest.(check int) "n=2" 1 (Protocol.ref_bits 2);
  Alcotest.(check int) "n=3" 2 (Protocol.ref_bits 3);
  Alcotest.(check int) "n=1024" 10 (Protocol.ref_bits 1024);
  Alcotest.(check int) "n=1025" 11 (Protocol.ref_bits 1025)

let test_engine_star () =
  let n = 33 in
  let eng = Engine.create (Generators.star n) in
  let cost = Engine.delete eng 0 in
  Alcotest.(check int) "degree" (n - 1) cost.Engine.deleted_degree;
  Alcotest.(check int) "anchors = satellites" (n - 1) cost.Engine.anchors;
  Alcotest.(check bool) "some rounds" true (cost.Engine.rounds > 0);
  Alcotest.(check bool) "some messages" true (cost.Engine.messages > 0);
  (* the healed structure must still satisfy all invariants *)
  Alcotest.(check (list string)) "invariants" [] (Fg_core.Invariants.check (Engine.fg eng))

let test_engine_isolated_deletion_cheap () =
  let g = Adjacency.create () in
  Adjacency.add_node g 0;
  Adjacency.add_node g 1;
  let eng = Engine.create g in
  let cost = Engine.delete eng 1 in
  Alcotest.(check int) "no anchors" 0 cost.Engine.anchors;
  Alcotest.(check int) "no messages" 0 cost.Engine.messages

let test_engine_degree_one () =
  let eng = Engine.create (Generators.path 2) in
  let cost = Engine.delete eng 1 in
  Alcotest.(check int) "one anchor" 1 cost.Engine.anchors;
  Alcotest.(check bool) "constant cost" true (cost.Engine.messages <= 8)

(* Lemma 4: messages = O(d log n), rounds = O(log d log n), message size
   O(log n). We check the measured costs against the bounds with explicit
   constants on a family of star deletions of growing degree. *)
let test_lemma4_star_scaling () =
  let log2 x = log (float_of_int (max 2 x)) /. log 2. in
  List.iter
    (fun n ->
      let eng = Engine.create (Generators.star n) in
      let c = Engine.delete eng 0 in
      let d = float_of_int c.Engine.deleted_degree in
      let lg = log2 c.Engine.n_seen in
      let msgs = float_of_int c.Engine.messages in
      let rounds = float_of_int c.Engine.rounds in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d messages %d <= 20 d log n" n c.Engine.messages)
        true
        (msgs <= 20. *. d *. lg);
      Alcotest.(check bool)
        (Printf.sprintf "n=%d rounds %d <= 12 log d log n" n c.Engine.rounds)
        true
        (rounds <= 12. *. log2 (int_of_float d) *. lg);
      (* Lemma 4 counts message size in node references ("at most O(log n)
         primary roots", each one reference); one reference costs
         ceil(log2 n) bits, so the bound in bits is O(log^2 n). *)
      let rb = float_of_int (Protocol.ref_bits c.Engine.n_seen) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d msg size %d bits <= 6 log n refs" n
           c.Engine.max_message_bits)
        true
        (float_of_int c.Engine.max_message_bits <= 6. *. lg *. rb))
    [ 8; 16; 32; 64; 128; 256; 512 ]

(* deleting along a dense ER graph: costs stay within Lemma 4 as RTs merge *)
let test_lemma4_er_sequence () =
  let rng = Rng.create 5 in
  let n = 64 in
  let eng = Engine.create (Generators.erdos_renyi rng n 0.12) in
  let log2 x = log (float_of_int (max 2 x)) /. log 2. in
  for v = 0 to (n / 2) - 1 do
    let c = Engine.delete eng v in
    let d = float_of_int (max 1 c.Engine.deleted_degree) in
    let lg = log2 c.Engine.n_seen in
    (* anchors <= 3d (Lemma 4: size(BTv) = 3d) *)
    Alcotest.(check bool)
      (Printf.sprintf "del %d anchors %d <= 3d=%d" v c.Engine.anchors
         (3 * c.Engine.deleted_degree))
      true
      (c.Engine.anchors <= 3 * max 1 c.Engine.deleted_degree);
    Alcotest.(check bool)
      (Printf.sprintf "del %d messages" v)
      true
      (float_of_int c.Engine.messages <= 30. *. d *. lg +. 30.)
  done;
  Alcotest.(check (list string)) "invariants" [] (Fg_core.Invariants.check (Engine.fg eng))

let test_engine_history () =
  let eng = Engine.create (Generators.ring 8) in
  ignore (Engine.delete eng 0);
  ignore (Engine.delete eng 4);
  Alcotest.(check int) "two costs" 2 (List.length (Engine.costs eng));
  match Engine.costs eng with
  | [ c0; c1 ] ->
    Alcotest.(check int) "order" 0 c0.Engine.deleted;
    Alcotest.(check int) "order" 4 c1.Engine.deleted
  | _ -> Alcotest.fail "expected two"

let test_engine_insert_then_delete () =
  let eng = Engine.create (Generators.ring 8) in
  Engine.insert eng 100 [ 0; 4 ];
  let c = Engine.delete eng 100 in
  Alcotest.(check int) "degree 2" 2 c.Engine.deleted_degree;
  Alcotest.(check (list string)) "invariants" [] (Fg_core.Invariants.check (Engine.fg eng))

let suite =
  [
    Alcotest.test_case "netsim: empty run" `Quick test_netsim_empty;
    Alcotest.test_case "netsim: relay chain" `Quick test_netsim_chain;
    Alcotest.test_case "netsim: broadcast rounds" `Quick test_netsim_broadcast_rounds;
    Alcotest.test_case "netsim: divergence guard" `Quick test_netsim_divergence_guard;
    Alcotest.test_case "netsim: async delays rounds" `Quick
      test_netsim_async_delays_rounds;
    Alcotest.test_case "flood: async-insensitive" `Quick
      test_flood_async_still_reaches_all;
    Alcotest.test_case "protocol: ref_bits" `Quick test_ref_bits;
    Alcotest.test_case "engine: star deletion" `Quick test_engine_star;
    Alcotest.test_case "engine: isolated deletion is free" `Quick
      test_engine_isolated_deletion_cheap;
    Alcotest.test_case "engine: degree-1 deletion is constant" `Quick
      test_engine_degree_one;
    Alcotest.test_case "lemma 4: star scaling" `Quick test_lemma4_star_scaling;
    Alcotest.test_case "lemma 4: ER deletion sequence" `Quick test_lemma4_er_sequence;
    Alcotest.test_case "engine: history" `Quick test_engine_history;
    Alcotest.test_case "engine: insert then delete" `Quick test_engine_insert_then_delete;
  ]
