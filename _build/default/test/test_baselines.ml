(* Tests for the healer baselines: naive patches, Forgiving Tree, cascade. *)

open Fg_graph
open Fg_baselines

(* ---- edge module (fg_core) ---- *)

let test_edge_normalised () =
  let e = Fg_core.Edge.make 7 3 in
  Alcotest.(check int) "a" 3 e.Fg_core.Edge.a;
  Alcotest.(check int) "b" 7 e.Fg_core.Edge.b;
  Alcotest.(check bool) "equal" true Fg_core.Edge.(equal e (make 3 7));
  Alcotest.(check int) "other" 7 (Fg_core.Edge.other e 3);
  Alcotest.(check int) "other'" 3 (Fg_core.Edge.other e 7);
  Alcotest.(check bool) "incident" true (Fg_core.Edge.incident e 3);
  Alcotest.(check bool) "not incident" false (Fg_core.Edge.incident e 5)

let test_edge_rejects_loop () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Fg_core.Edge.make 4 4);
       false
     with Invalid_argument _ -> true)

let test_half_edge () =
  let e = Fg_core.Edge.make 1 2 in
  let h = Fg_core.Edge.Half.make 1 e in
  Alcotest.(check int) "proc" 1 h.Fg_core.Edge.Half.proc;
  Alcotest.(check bool) "reject non-endpoint" true
    (try
       ignore (Fg_core.Edge.Half.make 9 e);
       false
     with Invalid_argument _ -> true)

(* ---- naive patches ---- *)

let star_then_delete pattern =
  let h = Naive.healer pattern (Generators.star 8) in
  h.Healer.delete 0;
  h

let test_cycle_patch () =
  let h = star_then_delete Naive.Cycle in
  let g = h.Healer.graph () in
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g);
  Alcotest.(check int) "cycle edges" 7 (Adjacency.num_edges g);
  List.iter
    (fun v -> Alcotest.(check int) (Printf.sprintf "deg %d" v) 2 (Adjacency.degree g v))
    (Adjacency.nodes g)

let test_line_patch () =
  let h = star_then_delete Naive.Line in
  let g = h.Healer.graph () in
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g);
  Alcotest.(check int) "path edges" 6 (Adjacency.num_edges g)

let test_clique_patch () =
  let h = star_then_delete Naive.Clique in
  let g = h.Healer.graph () in
  Alcotest.(check int) "complete" 21 (Adjacency.num_edges g);
  Alcotest.(check int) "diameter 1" 1 (Diameter.exact g)

let test_star_patch () =
  let h = star_then_delete Naive.Star in
  let g = h.Healer.graph () in
  Alcotest.(check int) "hub degree" 6 (Adjacency.degree g 1);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g)

let test_binary_patch () =
  let h = star_then_delete Naive.Binary_tree in
  let g = h.Healer.graph () in
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g);
  Alcotest.(check int) "tree edges" 6 (Adjacency.num_edges g);
  Alcotest.(check bool) "max degree 3" true (Adjacency.max_degree g <= 3)

let test_no_repair_disconnects () =
  let h = star_then_delete Naive.No_repair in
  Alcotest.(check int) "isolated satellites" 7
    (Connectivity.num_components (h.Healer.graph ()))

let test_naive_insert () =
  let h = Naive.healer Naive.Cycle (Generators.ring 4) in
  h.Healer.insert 10 [ 0; 2 ];
  Alcotest.(check bool) "edge added" true (Adjacency.mem_edge (h.Healer.graph ()) 10 0);
  Alcotest.(check bool) "in gprime" true (Adjacency.mem_edge (h.Healer.gprime ()) 10 2);
  Alcotest.(check bool) "alive" true (h.Healer.is_alive 10)

let test_naive_rejects_bad_ops () =
  let h = Naive.healer Naive.Cycle (Generators.ring 4) in
  h.Healer.delete 1;
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "reused id" true (raises (fun () -> h.Healer.insert 1 [ 0 ]));
  Alcotest.(check bool) "dead neighbour" true (raises (fun () -> h.Healer.insert 9 [ 1 ]));
  Alcotest.(check bool) "dead delete" true (raises (fun () -> h.Healer.delete 1))

(* ---- forgiving tree ---- *)

let test_spanning_tree () =
  let g = Generators.complete 6 in
  let t = Forgiving_tree.spanning_tree g in
  Alcotest.(check int) "n-1 edges" 5 (Adjacency.num_edges t);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected t);
  (* every tree edge is a graph edge *)
  Alcotest.(check bool) "subgraph" true
    (List.for_all (fun (u, v) -> Adjacency.mem_edge g u v) (Adjacency.edges t))

let test_spanning_tree_disconnected () =
  let g = Adjacency.of_edges [ (0, 1); (2, 3) ] in
  let t = Forgiving_tree.spanning_tree g in
  Alcotest.(check int) "forest" 2 (Adjacency.num_edges t);
  Alcotest.(check int) "two comps" 2 (Connectivity.num_components t)

let test_ft_heals_deletion () =
  let h = Forgiving_tree.healer (Generators.erdos_renyi (Rng.create 2) 32 0.15) in
  h.Healer.delete 5;
  h.Healer.delete 11;
  Alcotest.(check bool) "connected" true
    (Connectivity.is_connected (h.Healer.graph ()))

let test_ft_rejects_insert () =
  let h = Forgiving_tree.healer (Generators.ring 8) in
  Alcotest.(check bool) "unsupported" true
    (try
       h.Healer.insert 99 [ 0 ];
       false
     with Healer.Unsupported _ -> true)

let test_ft_init_cost () =
  let h = Forgiving_tree.healer (Generators.ring 64) in
  Alcotest.(check int) "n log n" (64 * 6) h.Healer.init_messages

let test_fg_healer_wrapper () =
  let h = Healer.forgiving_graph (Generators.ring 8) in
  Alcotest.(check int) "no init" 0 h.Healer.init_messages;
  h.Healer.delete 0;
  h.Healer.insert 100 [ 4 ];
  Alcotest.(check bool) "connected" true
    (Connectivity.is_connected (h.Healer.graph ()));
  Alcotest.(check int) "live" 8 (List.length (h.Healer.live_nodes ()))

let test_registry () =
  List.iter
    (fun name ->
      let h = Registry.by_name name (Generators.ring 6) in
      Alcotest.(check string) "name matches" name h.Healer.name)
    Registry.names;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Registry.by_name "bogus" (Generators.ring 4)))

(* ---- cascade ---- *)

let test_cascade_no_attack_stable () =
  let g = Generators.ring 20 in
  let r =
    Cascade.run { Cascade.tolerance = 0.1; max_waves = 10 } ~heal:Cascade.No_heal g
      ~attack:[]
  in
  Alcotest.(check int) "no failures" 20 r.Cascade.surviving;
  Alcotest.(check int) "no waves" 0 r.Cascade.waves

let test_cascade_hub_attack_no_heal () =
  let rng = Rng.create 4 in
  let g = Generators.barabasi_albert rng 100 2 in
  let attack = Cascade.top_degree_attack g 3 in
  Alcotest.(check int) "three victims" 3 (List.length attack);
  let r =
    Cascade.run { Cascade.tolerance = 0.05; max_waves = 30 } ~heal:Cascade.No_heal g
      ~attack
  in
  Alcotest.(check bool) "cascade happened" true (r.Cascade.surviving < 97);
  Alcotest.(check bool) "fractions consistent" true
    (r.Cascade.largest_component_fraction <= r.Cascade.surviving_fraction +. 1e-9)

let test_cascade_fg_keeps_one_component () =
  let rng = Rng.create 4 in
  let g = Generators.barabasi_albert rng 80 2 in
  let attack = Cascade.top_degree_attack g 2 in
  let r =
    Cascade.run { Cascade.tolerance = 0.3; max_waves = 30 } ~heal:Cascade.Forgiving g
      ~attack
  in
  (* the FG preserves connectivity: survivors = largest component *)
  Alcotest.(check (float 1e-9))
    "connected survivors" r.Cascade.surviving_fraction
    r.Cascade.largest_component_fraction

let test_cascade_high_tolerance_no_cascade () =
  let rng = Rng.create 4 in
  let g = Generators.barabasi_albert rng 60 2 in
  let r =
    Cascade.run { Cascade.tolerance = 1000.0; max_waves = 10 } ~heal:Cascade.No_heal g
      ~attack:[ 0 ]
  in
  Alcotest.(check int) "only the attacked node dies" 59 r.Cascade.surviving

let test_top_degree_attack_order () =
  let g = Generators.star 10 in
  Alcotest.(check (list int)) "centre first" [ 0; 1 ] (Cascade.top_degree_attack g 2)

let suite =
  [
    Alcotest.test_case "edge: normalisation" `Quick test_edge_normalised;
    Alcotest.test_case "edge: rejects loops" `Quick test_edge_rejects_loop;
    Alcotest.test_case "edge: half-edges" `Quick test_half_edge;
    Alcotest.test_case "naive: cycle patch" `Quick test_cycle_patch;
    Alcotest.test_case "naive: line patch" `Quick test_line_patch;
    Alcotest.test_case "naive: clique patch" `Quick test_clique_patch;
    Alcotest.test_case "naive: star patch" `Quick test_star_patch;
    Alcotest.test_case "naive: binary patch" `Quick test_binary_patch;
    Alcotest.test_case "naive: no repair disconnects" `Quick test_no_repair_disconnects;
    Alcotest.test_case "naive: insert" `Quick test_naive_insert;
    Alcotest.test_case "naive: rejects bad ops" `Quick test_naive_rejects_bad_ops;
    Alcotest.test_case "ft: spanning tree" `Quick test_spanning_tree;
    Alcotest.test_case "ft: spanning forest" `Quick test_spanning_tree_disconnected;
    Alcotest.test_case "ft: heals deletions" `Quick test_ft_heals_deletion;
    Alcotest.test_case "ft: rejects insert" `Quick test_ft_rejects_insert;
    Alcotest.test_case "ft: init cost n log n" `Quick test_ft_init_cost;
    Alcotest.test_case "healer: fg wrapper" `Quick test_fg_healer_wrapper;
    Alcotest.test_case "registry: all names" `Quick test_registry;
    Alcotest.test_case "cascade: stable without attack" `Quick
      test_cascade_no_attack_stable;
    Alcotest.test_case "cascade: hub attack cascades" `Quick
      test_cascade_hub_attack_no_heal;
    Alcotest.test_case "cascade: fg keeps one component" `Quick
      test_cascade_fg_keeps_one_component;
    Alcotest.test_case "cascade: high tolerance is stable" `Quick
      test_cascade_high_tolerance_no_cascade;
    Alcotest.test_case "cascade: attack ordering" `Quick test_top_degree_attack_order;
  ]
