(* Tests for the persistent graph and the flooding demo protocol. *)

open Fg_graph
module P = Persistent_graph

let test_persistent_basics () =
  let g = P.(empty |> add_edge 1 2 |> add_edge 2 3) in
  Alcotest.(check int) "nodes" 3 (P.num_nodes g);
  Alcotest.(check int) "edges" 2 (P.num_edges g);
  Alcotest.(check bool) "mem" true (P.mem_edge 1 2 g);
  Alcotest.(check bool) "sym" true (P.mem_edge 2 1 g);
  Alcotest.(check int) "degree" 2 (P.degree 2 g)

let test_persistent_sharing () =
  let g1 = P.(empty |> add_edge 1 2 |> add_edge 2 3) in
  let g2 = P.remove_edge 1 2 g1 in
  Alcotest.(check bool) "old unchanged" true (P.mem_edge 1 2 g1);
  Alcotest.(check bool) "new changed" false (P.mem_edge 1 2 g2)

let test_persistent_remove_node () =
  let g = P.(empty |> add_edge 0 1 |> add_edge 0 2 |> remove_node 0) in
  Alcotest.(check int) "nodes" 2 (P.num_nodes g);
  Alcotest.(check int) "edges" 0 (P.num_edges g)

let test_persistent_no_self_loop () =
  let g = P.(empty |> add_edge 4 4) in
  Alcotest.(check int) "empty" 0 (P.num_nodes g)

let test_persistent_roundtrip () =
  let a = Generators.erdos_renyi (Rng.create 3) 30 0.15 in
  let p = P.of_adjacency a in
  Alcotest.(check int) "node count" (Adjacency.num_nodes a) (P.num_nodes p);
  Alcotest.(check int) "edge count" (Adjacency.num_edges a) (P.num_edges p);
  Alcotest.(check bool) "roundtrip" true (Adjacency.equal a (P.to_adjacency p))

let test_persistent_equal () =
  let g1 = P.(empty |> add_edge 1 2) in
  let g2 = P.(empty |> add_edge 2 1) in
  Alcotest.(check bool) "equal" true (P.equal g1 g2);
  Alcotest.(check bool) "not equal" false (P.equal g1 (P.add_node 9 g2))

let prop_persistent_matches_mutable =
  QCheck2.Test.make ~name:"persistent mirrors mutable under random ops" ~count:60
    QCheck2.Gen.(list_size (int_range 1 60) (tup3 (int_range 0 2) (int_range 0 12) (int_range 0 12)))
    (fun ops ->
      let a = Adjacency.create () in
      let p = ref P.empty in
      let apply (op, u, v) =
        match op with
        | 0 ->
          Adjacency.add_edge a u v;
          p := P.add_edge u v !p
        | 1 ->
          Adjacency.remove_edge a u v;
          p := P.remove_edge u v !p
        | _ ->
          Adjacency.remove_node a u;
          p := P.remove_node u !p
      in
      List.iter apply ops;
      (* mutable keeps isolated endpoint nodes after remove_edge; both do *)
      Adjacency.num_edges a = P.num_edges !p
      && List.for_all
           (fun (u, v) -> P.mem_edge u v !p)
           (Adjacency.edges a))

(* ---- flood ---- *)

let test_flood_reaches_all () =
  let g = Generators.erdos_renyi (Rng.create 5) 40 0.12 in
  let r = Fg_sim.Flood.broadcast g ~root:0 in
  Alcotest.(check int) "all reached" (Adjacency.num_nodes g) r.Fg_sim.Flood.reached

let test_flood_rounds_path () =
  let g = Generators.path 10 in
  let r = Fg_sim.Flood.broadcast g ~root:0 in
  Alcotest.(check int) "depth" 9 r.Fg_sim.Flood.broadcast_rounds;
  Alcotest.(check int) "all" 10 r.Fg_sim.Flood.reached;
  (* echo doubles the path depth *)
  Alcotest.(check int) "echo rounds" 18 r.Fg_sim.Flood.total_rounds

let test_flood_messages_tree () =
  (* on a tree: one token per edge, one echo per edge *)
  let g = Generators.binary_tree 15 in
  let r = Fg_sim.Flood.broadcast g ~root:0 in
  Alcotest.(check int) "2 per edge" 28 r.Fg_sim.Flood.messages

let test_flood_partial_on_disconnected () =
  let g = Adjacency.of_edges [ (0, 1); (2, 3) ] in
  let r = Fg_sim.Flood.broadcast g ~root:0 in
  Alcotest.(check int) "only own component" 2 r.Fg_sim.Flood.reached

let test_flood_unknown_root () =
  let g = Generators.ring 4 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Fg_sim.Flood.broadcast g ~root:99);
       false
     with Invalid_argument _ -> true)

let test_flood_singleton () =
  let g = Adjacency.create () in
  Adjacency.add_node g 7;
  let r = Fg_sim.Flood.broadcast g ~root:7 in
  Alcotest.(check int) "self only" 1 r.Fg_sim.Flood.reached;
  Alcotest.(check int) "no messages" 0 r.Fg_sim.Flood.messages

let props = List.map QCheck_alcotest.to_alcotest [ prop_persistent_matches_mutable ]

let suite =
  [
    Alcotest.test_case "persistent: basics" `Quick test_persistent_basics;
    Alcotest.test_case "persistent: structural sharing" `Quick test_persistent_sharing;
    Alcotest.test_case "persistent: remove node" `Quick test_persistent_remove_node;
    Alcotest.test_case "persistent: no self-loops" `Quick test_persistent_no_self_loop;
    Alcotest.test_case "persistent: adjacency roundtrip" `Quick test_persistent_roundtrip;
    Alcotest.test_case "persistent: equal" `Quick test_persistent_equal;
    Alcotest.test_case "flood: reaches all" `Quick test_flood_reaches_all;
    Alcotest.test_case "flood: rounds on a path" `Quick test_flood_rounds_path;
    Alcotest.test_case "flood: messages on a tree" `Quick test_flood_messages_tree;
    Alcotest.test_case "flood: disconnected" `Quick test_flood_partial_on_disconnected;
    Alcotest.test_case "flood: unknown root" `Quick test_flood_unknown_root;
    Alcotest.test_case "flood: singleton" `Quick test_flood_singleton;
  ]
  @ props
