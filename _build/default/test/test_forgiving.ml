(* Behavioural and invariant tests for the centralized Forgiving Graph. *)

open Fg_graph
open Fg_core

let check_ok label t =
  match Invariants.check t with
  | [] -> ()
  | errs ->
    Alcotest.failf "%s: %d invariant violations, first: %s" label (List.length errs)
      (List.hd errs)

let test_of_graph_identity () =
  let g = Generators.ring 8 in
  let t = Forgiving_graph.of_graph g in
  Alcotest.(check bool) "image = G0" true (Adjacency.equal g (Forgiving_graph.graph t));
  Alcotest.(check int) "seen" 8 (Forgiving_graph.num_seen t);
  check_ok "identity" t

let test_delete_star_center () =
  (* deleting the centre of a star must reconnect the satellites as a haft:
     n-1 leaves, depth ceil(log2 (n-1)). Degrees stay <= 4 = 3d'+1; the
     paper's stated 3x is exceeded by exactly one edge on some simulator
     once the RT has >= 16 leaves (see DESIGN.md §6). *)
  let n = 17 in
  let t = Forgiving_graph.of_graph (Generators.star n) in
  Forgiving_graph.delete t 0;
  check_ok "star heal" t;
  let g = Forgiving_graph.graph t in
  Alcotest.(check int) "nodes" (n - 1) (Adjacency.num_nodes g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g);
  Alcotest.(check bool)
    "degrees bounded by 3x1 + 1" true
    (List.for_all (fun v -> Adjacency.degree g v <= 4) (Adjacency.nodes g))

let test_small_star_meets_paper_bound () =
  (* for < 16 satellites every simulator gets a collapse, so the paper's
     stated 3x holds exactly *)
  let t = Forgiving_graph.of_graph (Generators.star 9) in
  Forgiving_graph.delete t 0;
  check_ok "small star heal" t;
  Alcotest.(check (list string)) "3x holds" [] (Invariants.paper_degree_violations t)

let test_delete_isolated () =
  let g = Adjacency.create () in
  Adjacency.add_node g 1;
  Adjacency.add_node g 2;
  Adjacency.add_edge g 1 2;
  Adjacency.add_node g 3;
  let t = Forgiving_graph.of_graph g in
  Forgiving_graph.delete t 3;
  check_ok "isolated deletion" t;
  Alcotest.(check int) "two live" 2 (Forgiving_graph.num_live t)

let test_delete_degree_one () =
  let t = Forgiving_graph.of_graph (Generators.path 3) in
  Forgiving_graph.delete t 2;
  check_ok "leaf node deletion" t;
  let g = Forgiving_graph.graph t in
  Alcotest.(check bool) "edge 0-1 remains" true (Adjacency.mem_edge g 0 1);
  Alcotest.(check int) "nodes" 2 (Adjacency.num_nodes g)

let test_delete_path_middle () =
  let t = Forgiving_graph.of_graph (Generators.path 3) in
  Forgiving_graph.delete t 1;
  check_ok "path middle" t;
  let g = Forgiving_graph.graph t in
  Alcotest.(check bool) "healed edge 0-2" true (Adjacency.mem_edge g 0 2)

let test_insert_then_delete () =
  let t = Forgiving_graph.of_graph (Generators.ring 6) in
  Forgiving_graph.insert t 100 [ 0; 3 ];
  check_ok "after insert" t;
  Alcotest.(check bool) "direct edge" true
    (Adjacency.mem_edge (Forgiving_graph.graph t) 100 0);
  Forgiving_graph.delete t 0;
  check_ok "after delete" t;
  Alcotest.(check bool) "still connected" true
    (Connectivity.is_connected (Forgiving_graph.graph t))

let test_insert_rejects_dead_neighbor () =
  let t = Forgiving_graph.of_graph (Generators.ring 6) in
  Forgiving_graph.delete t 2;
  Alcotest.(check bool) "raises" true
    (try
       Forgiving_graph.insert t 50 [ 2 ];
       false
     with Invalid_argument _ -> true)

let test_insert_rejects_reused_id () =
  let t = Forgiving_graph.of_graph (Generators.ring 6) in
  Forgiving_graph.delete t 2;
  Alcotest.(check bool) "raises" true
    (try
       Forgiving_graph.insert t 2 [ 0 ];
       false
     with Invalid_argument _ -> true)

let test_delete_rejects_dead () =
  let t = Forgiving_graph.of_graph (Generators.ring 6) in
  Forgiving_graph.delete t 2;
  Alcotest.(check bool) "raises" true
    (try
       Forgiving_graph.delete t 2;
       false
     with Invalid_argument _ -> true)

let test_repeated_adjacent_deletions () =
  (* delete a chain of adjacent nodes so RTs must merge repeatedly *)
  let t = Forgiving_graph.of_graph (Generators.path 12) in
  List.iter
    (fun v ->
      Forgiving_graph.delete t v;
      check_ok (Printf.sprintf "after deleting %d" v) t)
    [ 5; 6; 4; 7; 3; 8 ];
  let g = Forgiving_graph.graph t in
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g)

let test_delete_all_but_one () =
  let n = 16 in
  let t = Forgiving_graph.of_graph (Generators.complete n) in
  for v = 0 to n - 2 do
    Forgiving_graph.delete t v;
    check_ok (Printf.sprintf "complete, deleted 0..%d" v) t
  done;
  Alcotest.(check int) "one survivor" 1 (Forgiving_graph.num_live t)

let test_stretch_after_star () =
  let n = 65 in
  let t = Forgiving_graph.of_graph (Generators.star n) in
  Forgiving_graph.delete t 0;
  match Invariants.check_stretch_bound t with
  | [] -> ()
  | e :: _ -> Alcotest.fail e

let test_helper_load_bounded () =
  let t = Forgiving_graph.of_graph (Generators.complete 10) in
  List.iter (fun v -> Forgiving_graph.delete t v) [ 0; 1; 2; 3 ];
  check_ok "helper load" t;
  List.iter
    (fun v ->
      let load = Forgiving_graph.helper_load t v in
      let deg = Adjacency.degree (Forgiving_graph.gprime t) v in
      Alcotest.(check bool)
        (Printf.sprintf "node %d: %d helpers <= %d" v load deg)
        true (load <= deg))
    (Forgiving_graph.live_nodes t)

(* ---- randomized attack property ---- *)

(* run a random insert/delete mix over a random graph, checking the full
   invariant suite after every step. This is the main correctness net. *)
let random_churn ~seed ~n ~steps ~p_delete =
  let rng = Rng.create seed in
  let g = Generators.erdos_renyi rng n (3.0 /. float_of_int n) in
  let t = Forgiving_graph.of_graph g in
  let next_id = ref n in
  let ok = ref true in
  let first_err = ref "" in
  for step = 1 to steps do
    if !ok then begin
      let live = Forgiving_graph.live_nodes t in
      let do_delete = Rng.float rng 1.0 < p_delete && List.length live > 2 in
      if do_delete then Forgiving_graph.delete t (Rng.pick rng live)
      else begin
        let k = 1 + Rng.int rng (min 4 (List.length live)) in
        let nbrs = Array.to_list (Rng.sample rng k (Array.of_list live)) in
        Forgiving_graph.insert t !next_id nbrs;
        incr next_id
      end;
      match Invariants.check t with
      | [] -> ()
      | errs ->
        ok := false;
        first_err := Printf.sprintf "step %d: %s" step (List.hd errs)
    end
  done;
  (!ok, !first_err, t)

let test_random_churn_small () =
  let ok, err, _ = random_churn ~seed:7 ~n:24 ~steps:60 ~p_delete:0.5 in
  if not ok then Alcotest.fail err

let test_random_churn_delete_heavy () =
  let ok, err, _ = random_churn ~seed:13 ~n:40 ~steps:38 ~p_delete:0.9 in
  if not ok then Alcotest.fail err

let test_random_churn_insert_heavy () =
  let ok, err, _ = random_churn ~seed:21 ~n:10 ~steps:80 ~p_delete:0.25 in
  if not ok then Alcotest.fail err

let test_stretch_bound_after_churn () =
  let _, _, t = random_churn ~seed:42 ~n:30 ~steps:40 ~p_delete:0.6 in
  match Invariants.check_stretch_bound t with
  | [] -> ()
  | e :: _ -> Alcotest.fail e

let prop_churn_invariants =
  QCheck2.Test.make ~name:"invariants hold under random churn" ~count:25
    QCheck2.Gen.(
      tup3 (int_range 0 10_000) (int_range 8 32) (int_range 5 40))
    (fun (seed, n, steps) ->
      let ok, _, _ = random_churn ~seed ~n ~steps ~p_delete:0.55 in
      ok)

let prop_stretch_after_churn =
  QCheck2.Test.make ~name:"stretch bound holds after random churn" ~count:10
    QCheck2.Gen.(tup2 (int_range 0 10_000) (int_range 8 24))
    (fun (seed, n) ->
      let _, _, t = random_churn ~seed ~n ~steps:20 ~p_delete:0.6 in
      Invariants.check_stretch_bound t = [])

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_churn_invariants; prop_stretch_after_churn ]

let suite =
  [
    Alcotest.test_case "of_graph is identity" `Quick test_of_graph_identity;
    Alcotest.test_case "star centre deletion" `Quick test_delete_star_center;
    Alcotest.test_case "small star meets paper 3x bound" `Quick
      test_small_star_meets_paper_bound;
    Alcotest.test_case "isolated node deletion" `Quick test_delete_isolated;
    Alcotest.test_case "degree-1 deletion" `Quick test_delete_degree_one;
    Alcotest.test_case "path middle deletion" `Quick test_delete_path_middle;
    Alcotest.test_case "insert then delete" `Quick test_insert_then_delete;
    Alcotest.test_case "insert rejects dead neighbour" `Quick
      test_insert_rejects_dead_neighbor;
    Alcotest.test_case "insert rejects reused id" `Quick test_insert_rejects_reused_id;
    Alcotest.test_case "delete rejects dead node" `Quick test_delete_rejects_dead;
    Alcotest.test_case "repeated adjacent deletions" `Quick
      test_repeated_adjacent_deletions;
    Alcotest.test_case "delete all but one (K16)" `Quick test_delete_all_but_one;
    Alcotest.test_case "stretch bound after star heal" `Quick test_stretch_after_star;
    Alcotest.test_case "helper load bounded by degree" `Quick test_helper_load_bounded;
    Alcotest.test_case "random churn invariants (seed 7)" `Quick test_random_churn_small;
    Alcotest.test_case "random churn delete-heavy (seed 13)" `Quick
      test_random_churn_delete_heavy;
    Alcotest.test_case "random churn insert-heavy (seed 21)" `Quick
      test_random_churn_insert_heavy;
    Alcotest.test_case "stretch bound after churn (seed 42)" `Quick
      test_stretch_bound_after_churn;
  ]
  @ props
