(* Tests for the attack-history recorder. *)

open Fg_graph
module H = Fg_core.History
module P = Persistent_graph

let test_initial_snapshot () =
  let g = Generators.ring 6 in
  let h = H.create g in
  Alcotest.(check int) "no events" 0 (H.length h);
  Alcotest.(check bool) "snapshot 0 = g0" true
    (Adjacency.equal g (P.to_adjacency (H.snapshot h 0)))

let test_snapshots_track_events () =
  let h = H.create (Generators.ring 6) in
  H.delete h 0;
  H.insert h 10 [ 2; 4 ];
  Alcotest.(check int) "two events" 2 (H.length h);
  (* snapshot 1: after deleting 0 *)
  let s1 = H.snapshot h 1 in
  Alcotest.(check bool) "0 gone" false (P.mem_node 0 s1);
  Alcotest.(check bool) "10 not yet" false (P.mem_node 10 s1);
  (* snapshot 2: after inserting 10 *)
  let s2 = H.snapshot h 2 in
  Alcotest.(check bool) "10 present" true (P.mem_node 10 s2);
  Alcotest.(check bool) "edge to 2" true (P.mem_edge 10 2 s2);
  (* current state equals the last snapshot *)
  Alcotest.(check bool) "current = last" true
    (Adjacency.equal
       (Fg_core.Forgiving_graph.graph (H.fg h))
       (P.to_adjacency s2))

let test_snapshots_immutable () =
  let h = H.create (Generators.ring 6) in
  H.delete h 0;
  let before = H.snapshot h 0 in
  (* snapshot 0 still has node 0 even after the deletion *)
  Alcotest.(check bool) "node 0 in snapshot 0" true (P.mem_node 0 before)

let test_events_order () =
  let h = H.create (Generators.ring 6) in
  H.delete h 3;
  H.insert h 20 [ 0 ];
  H.delete h 20;
  match H.events h with
  | [ H.Deleted 3; H.Inserted (20, [ 0 ]); H.Deleted 20 ] -> ()
  | evs ->
    Alcotest.failf "unexpected order: %s"
      (String.concat "; " (List.map (Format.asprintf "%a" H.pp_event) evs))

let test_series () =
  let h = H.create (Generators.ring 8) in
  H.delete h 0;
  H.delete h 4;
  let nodes = H.series h P.num_nodes in
  Alcotest.(check (list int)) "node counts" [ 8; 7; 6 ] nodes;
  (* connectivity preserved at every point *)
  let connected =
    H.series h (fun s -> Connectivity.is_connected (P.to_adjacency s))
  in
  Alcotest.(check (list bool)) "always connected" [ true; true; true ] connected

let test_out_of_range () =
  let h = H.create (Generators.ring 4) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (H.snapshot h 1);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "initial snapshot" `Quick test_initial_snapshot;
    Alcotest.test_case "snapshots track events" `Quick test_snapshots_track_events;
    Alcotest.test_case "snapshots are immutable" `Quick test_snapshots_immutable;
    Alcotest.test_case "event order" `Quick test_events_order;
    Alcotest.test_case "series" `Quick test_series;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
  ]
