(* Tests for the adversary strategies and churn drivers. *)

open Fg_graph
module Adversary = Fg_adversary.Adversary
module Churn = Fg_adversary.Churn
module Healer = Fg_baselines.Healer

let fg_healer g = Healer.forgiving_graph g

let test_pick_random_live () =
  let h = fg_healer (Generators.ring 8) in
  let rng = Rng.create 1 in
  match Adversary.pick_victim Adversary.Random rng h with
  | None -> Alcotest.fail "expected a victim"
  | Some v -> Alcotest.(check bool) "live" true (h.Healer.is_alive v)

let test_pick_none_when_tiny () =
  let g = Adjacency.of_edges [ (0, 1) ] in
  let h = fg_healer g in
  h.Healer.delete 0;
  Alcotest.(check (option int)) "refuses last node" None
    (Adversary.pick_victim Adversary.Random (Rng.create 1) h)

let test_pick_max_degree () =
  let h = fg_healer (Generators.star 10) in
  Alcotest.(check (option int)) "the hub" (Some 0)
    (Adversary.pick_victim Adversary.Max_degree (Rng.create 1) h)

let test_pick_oldest () =
  let h = fg_healer (Generators.ring 5) in
  Alcotest.(check (option int)) "smallest id" (Some 0)
    (Adversary.pick_victim Adversary.Oldest (Rng.create 1) h);
  h.Healer.delete 0;
  Alcotest.(check (option int)) "next" (Some 1)
    (Adversary.pick_victim Adversary.Oldest (Rng.create 1) h)

let test_pick_articulation () =
  (* path: interior nodes are cut vertices; smallest is 1 *)
  let h = fg_healer (Generators.path 5) in
  Alcotest.(check (option int)) "cut vertex" (Some 1)
    (Adversary.pick_victim Adversary.Articulation (Rng.create 1) h)

let test_pick_articulation_fallback () =
  (* ring has no cut vertex: falls back to max degree (all equal -> min id) *)
  let h = fg_healer (Generators.ring 6) in
  Alcotest.(check (option int)) "fallback" (Some 0)
    (Adversary.pick_victim Adversary.Articulation (Rng.create 1) h)

let test_pick_betweenness () =
  let h = fg_healer (Generators.star 8) in
  Alcotest.(check (option int)) "the centre" (Some 0)
    (Adversary.pick_victim Adversary.Max_betweenness (Rng.create 1) h)

let test_pick_max_gprime_degree () =
  let h = fg_healer (Generators.star 8) in
  (* after deleting satellite 1, the centre still dominates G' *)
  h.Healer.delete 1;
  Alcotest.(check (option int)) "centre" (Some 0)
    (Adversary.pick_victim Adversary.Max_gprime_degree (Rng.create 1) h)

let test_attach_chain () =
  let h = fg_healer (Generators.ring 4) in
  let rng = Rng.create 1 in
  let nbrs = Adversary.pick_neighbors Adversary.Attach_chain rng h ~last_inserted:None in
  Alcotest.(check (list int)) "falls back to first" [ 0 ] nbrs;
  h.Healer.insert 50 nbrs;
  let nbrs2 =
    Adversary.pick_neighbors Adversary.Attach_chain rng h ~last_inserted:(Some 50)
  in
  Alcotest.(check (list int)) "chains to last" [ 50 ] nbrs2

let test_attach_hub () =
  let h = fg_healer (Generators.ring 4) in
  let rng = Rng.create 1 in
  let nbrs =
    Adversary.pick_neighbors (Adversary.Attach_hub 2) rng h ~last_inserted:None
  in
  Alcotest.(check (list int)) "targets the victim" [ 2 ] nbrs;
  h.Healer.delete 2;
  let nbrs2 =
    Adversary.pick_neighbors (Adversary.Attach_hub 2) rng h ~last_inserted:None
  in
  Alcotest.(check bool) "falls back when dead" true (nbrs2 <> [ 2 ] && nbrs2 <> [])

let test_attach_random_distinct_live () =
  let h = fg_healer (Generators.ring 10) in
  let rng = Rng.create 1 in
  let nbrs =
    Adversary.pick_neighbors (Adversary.Attach_random 4) rng h ~last_inserted:None
  in
  Alcotest.(check int) "four" 4 (List.length (List.sort_uniq compare nbrs));
  Alcotest.(check bool) "all live" true (List.for_all h.Healer.is_alive nbrs)

let test_attach_preferential_live () =
  let h = fg_healer (Generators.star 10) in
  let rng = Rng.create 1 in
  let nbrs =
    Adversary.pick_neighbors (Adversary.Attach_preferential 2) rng h ~last_inserted:None
  in
  Alcotest.(check bool) "non-empty" true (nbrs <> []);
  Alcotest.(check bool) "all live" true (List.for_all h.Healer.is_alive nbrs)

let test_pick_healing_degree () =
  (* after a star heal, the node with the most healing edges is a satellite
     that simulates a high helper *)
  let h = fg_healer (Generators.star 17) in
  h.Healer.delete 0;
  match Adversary.pick_victim Adversary.Max_healing_degree (Rng.create 1) h with
  | None -> Alcotest.fail "expected a victim"
  | Some v ->
    let g = h.Healer.graph () and gp = h.Healer.gprime () in
    let gain u = Adjacency.degree g u - Adjacency.degree gp u in
    Alcotest.(check bool) "maximal healing degree" true
      (List.for_all (fun u -> gain u <= gain v) (h.Healer.live_nodes ()))

let test_attach_far_spread () =
  let h = fg_healer (Generators.path 20) in
  let rng = Rng.create 1 in
  let nbrs = Adversary.pick_neighbors (Adversary.Attach_far 2) rng h ~last_inserted:None in
  (* on a path starting from node 0, the farthest node is the other end *)
  Alcotest.(check (list int)) "ends of the path" [ 19; 0 ] nbrs

let test_deletion_name_roundtrip () =
  List.iter
    (fun name ->
      Alcotest.(check string) "roundtrip" name
        (Adversary.deletion_name (Adversary.deletion_of_name name)))
    Adversary.deletion_names

let test_drive_script_replayable () =
  let rng = Rng.create 17 in
  let g0 = Generators.ring 16 in
  let h1 = fg_healer g0 in
  let script =
    Churn.drive rng h1 ~steps:40 ~p_delete:0.5 ~del:Adversary.Random
      ~ins:(Adversary.Attach_random 2) ~first_id:16
  in
  Alcotest.(check int) "full length" 40 (List.length script);
  (* replay on a fresh healer must produce the identical G' *)
  let h2 = fg_healer (Generators.ring 16) in
  Churn.replay h2 script;
  Alcotest.(check bool) "same gprime" true
    (Adjacency.equal (h1.Healer.gprime ()) (h2.Healer.gprime ()));
  Alcotest.(check bool) "same graph" true
    (Adjacency.equal (h1.Healer.graph ()) (h2.Healer.graph ()))

let test_drive_stops_at_two () =
  let rng = Rng.create 3 in
  let h = fg_healer (Generators.path 4) in
  let script =
    Churn.drive rng h ~steps:100 ~p_delete:1.0 ~del:Adversary.Random
      ~ins:(Adversary.Attach_random 1) ~first_id:100
  in
  Alcotest.(check bool) "stopped early" true (List.length script < 100);
  Alcotest.(check int) "two survivors" 2 (List.length (h.Healer.live_nodes ()))

let test_delete_fraction () =
  let rng = Rng.create 5 in
  let h = fg_healer (Generators.ring 20) in
  let victims = Churn.delete_fraction rng h ~fraction:0.25 ~del:Adversary.Random in
  Alcotest.(check int) "five victims" 5 (List.length victims);
  Alcotest.(check int) "fifteen live" 15 (List.length (h.Healer.live_nodes ()))

let suite =
  [
    Alcotest.test_case "pick: random live" `Quick test_pick_random_live;
    Alcotest.test_case "pick: none below two nodes" `Quick test_pick_none_when_tiny;
    Alcotest.test_case "pick: max degree hub" `Quick test_pick_max_degree;
    Alcotest.test_case "pick: oldest" `Quick test_pick_oldest;
    Alcotest.test_case "pick: articulation" `Quick test_pick_articulation;
    Alcotest.test_case "pick: articulation fallback" `Quick
      test_pick_articulation_fallback;
    Alcotest.test_case "pick: betweenness" `Quick test_pick_betweenness;
    Alcotest.test_case "pick: max G' degree" `Quick test_pick_max_gprime_degree;
    Alcotest.test_case "attach: chain" `Quick test_attach_chain;
    Alcotest.test_case "attach: hub" `Quick test_attach_hub;
    Alcotest.test_case "attach: random distinct live" `Quick
      test_attach_random_distinct_live;
    Alcotest.test_case "attach: preferential live" `Quick test_attach_preferential_live;
    Alcotest.test_case "pick: max healing degree" `Quick test_pick_healing_degree;
    Alcotest.test_case "attach: far spread" `Quick test_attach_far_spread;
    Alcotest.test_case "deletion names roundtrip" `Quick test_deletion_name_roundtrip;
    Alcotest.test_case "churn: script replay reproduces state" `Quick
      test_drive_script_replayable;
    Alcotest.test_case "churn: stops at two survivors" `Quick test_drive_stops_at_two;
    Alcotest.test_case "churn: delete fraction" `Quick test_delete_fraction;
  ]
