(* Batch (simultaneous) deletions: the extension beyond the one-per-round
   adversary. All invariants must hold after a single combined repair. *)

open Fg_graph
module Fg = Fg_core.Forgiving_graph

let check_ok label fg =
  match Fg_core.Invariants.check fg with
  | [] -> ()
  | errs -> Alcotest.failf "%s: %s" label (List.hd errs)

let test_batch_pair_adjacent () =
  let fg = Fg.of_graph (Generators.path 5) in
  Fg.delete_batch fg [ 1; 2 ];
  check_ok "adjacent pair" fg;
  let g = Fg.graph fg in
  Alcotest.(check int) "three survivors" 3 (Adjacency.num_nodes g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g)

let test_batch_whole_clique_core () =
  (* kill a complete subgraph at once *)
  let fg = Fg.of_graph (Generators.complete 10) in
  Fg.delete_batch fg [ 0; 1; 2; 3; 4 ];
  check_ok "clique core" fg;
  Alcotest.(check bool) "connected" true (Connectivity.is_connected (Fg.graph fg))

let test_batch_star_core () =
  (* centre + some satellites at once *)
  let fg = Fg.of_graph (Generators.star 12) in
  Fg.delete_batch fg [ 0; 3; 7 ];
  check_ok "star core" fg;
  let g = Fg.graph fg in
  Alcotest.(check int) "nine left" 9 (Adjacency.num_nodes g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g)

let test_batch_disconnecting_is_honest () =
  (* killing all of a path's interior leaves two components in G' too *)
  let g = Adjacency.of_edges [ (0, 1); (1, 2); (2, 3) ] in
  let fg = Fg.of_graph g in
  Fg.delete_batch fg [ 1; 2 ];
  check_ok "interior kill" fg;
  (* 0 and 3 stay connected through the RT (G' connects them via 1,2) *)
  Alcotest.(check bool) "healed across" true
    (Connectivity.is_connected (Fg.graph fg))

let test_batch_equals_sequence_invariants () =
  let rng = Rng.create 55 in
  let g = Generators.erdos_renyi rng 40 0.12 in
  let fg_batch = Fg.of_graph (Adjacency.copy g) in
  let fg_seq = Fg.of_graph (Adjacency.copy g) in
  let victims = [ 3; 9; 14; 15; 27 ] in
  Fg.delete_batch fg_batch victims;
  List.iter (Fg.delete fg_seq) victims;
  check_ok "batch" fg_batch;
  check_ok "sequential" fg_seq;
  (* same survivors, same G'; topologies may differ but both stay bounded *)
  Alcotest.(check bool) "same gprime" true
    (Adjacency.equal (Fg.gprime fg_batch) (Fg.gprime fg_seq));
  Alcotest.(check (list int)) "same survivors"
    (List.sort compare (Fg.live_nodes fg_batch))
    (List.sort compare (Fg.live_nodes fg_seq))

let test_batch_cheaper_than_sequence () =
  (* one repair over the union beats k repairs (in anchors and helpers) *)
  let g = Generators.complete 16 in
  let fg_batch = Fg.of_graph (Adjacency.copy g) in
  let traces = Fg.delete_batch_traced fg_batch [ 0; 1; 2; 3 ] in
  let helpers_of (tr : Fg_core.Rt.heal_trace) =
    List.fold_left
      (fun acc evs ->
        List.fold_left (fun a (e : Fg_core.Rt.merge_event) -> a + e.Fg_core.Rt.me_created) acc evs)
      0 tr.Fg_core.Rt.ht_levels
  in
  let batch_created = List.fold_left (fun a t -> a + helpers_of t) 0 traces in
  let fg_seq = Fg.of_graph (Adjacency.copy g) in
  let seq_created =
    List.fold_left
      (fun acc v ->
        let tr = Fg.delete_traced fg_seq v in
        List.fold_left
          (fun acc evs ->
            List.fold_left
              (fun a (e : Fg_core.Rt.merge_event) -> a + e.Fg_core.Rt.me_created)
              acc evs)
          acc tr.Fg_core.Rt.ht_levels)
      0 [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "batch %d <= sequential %d" batch_created seq_created)
    true (batch_created <= seq_created)

let test_batch_rejects_dead () =
  let fg = Fg.of_graph (Generators.ring 6) in
  Fg.delete fg 2;
  Alcotest.(check bool) "raises" true
    (try
       Fg.delete_batch fg [ 1; 2 ];
       false
     with Invalid_argument _ -> true)

let test_batch_duplicates_collapse () =
  let fg = Fg.of_graph (Generators.ring 6) in
  Fg.delete_batch fg [ 2; 2; 2 ];
  check_ok "dup" fg;
  Alcotest.(check int) "one deleted" 5 (Fg.num_live fg)

let test_batch_after_history () =
  (* batches interleaved with singles and inserts *)
  let rng = Rng.create 8 in
  let fg = Fg.of_graph (Generators.erdos_renyi rng 48 0.1) in
  Fg.delete fg 0;
  Fg.delete_batch fg [ 5; 6; 7 ];
  Fg.insert fg 100 [ 10; 20 ];
  Fg.delete_batch fg [ 10; 30; 31; 32 ];
  check_ok "mixed history" fg;
  let t = Fg_sim.Table1.of_fg fg in
  Alcotest.(check (list string)) "table1 complete" []
    (Fg_sim.Table1.check_complete t fg)

let prop_batch_invariants =
  QCheck2.Test.make ~name:"random batches keep all invariants" ~count:30
    QCheck2.Gen.(tup3 (int_range 0 9999) (int_range 10 32) (int_range 2 6))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng n (3.0 /. float_of_int n) in
      let fg = Fg.of_graph g in
      let ok = ref true in
      for _ = 1 to 3 do
        let live = Fg.live_nodes fg in
        if List.length live > k + 2 then begin
          let batch = Array.to_list (Rng.sample rng k (Array.of_list live)) in
          Fg.delete_batch fg batch;
          if Fg_core.Invariants.check fg <> [] then ok := false
        end
      done;
      !ok)

let props = List.map QCheck_alcotest.to_alcotest [ prop_batch_invariants ]

let suite =
  [
    Alcotest.test_case "batch: adjacent pair" `Quick test_batch_pair_adjacent;
    Alcotest.test_case "batch: clique core" `Quick test_batch_whole_clique_core;
    Alcotest.test_case "batch: star core" `Quick test_batch_star_core;
    Alcotest.test_case "batch: heals across interior kill" `Quick
      test_batch_disconnecting_is_honest;
    Alcotest.test_case "batch: same bounds as sequence" `Quick
      test_batch_equals_sequence_invariants;
    Alcotest.test_case "batch: cheaper than sequence" `Quick
      test_batch_cheaper_than_sequence;
    Alcotest.test_case "batch: rejects dead victims" `Quick test_batch_rejects_dead;
    Alcotest.test_case "batch: duplicates collapse" `Quick test_batch_duplicates_collapse;
    Alcotest.test_case "batch: mixed history + table1" `Quick test_batch_after_history;
  ]
  @ props
