(* The distributed repair, blow by blow.

   Runs the per-processor protocol on a small network and narrates the
   coordinator's decisions (fragment collection, strip, merge levels),
   then verifies the healed per-processor state against the centralized
   engine and prints the Lemma 4 bill — including a run under an
   asynchronous network that delays and reorders every message.

   Run with: dune exec examples/distributed_repair.exe *)

module De = Fg_sim.Dist_engine
module Fg = Fg_core.Forgiving_graph

let () =
  let g0 = Fg_graph.Generators.complete 9 in
  Format.printf "K9: delete node 0, then node 1 (an RT leaf), narrated:@.@.";
  let st = Fg_sim.Dist_state.create () in
  Fg_graph.Adjacency.iter_nodes (fun v -> Fg_sim.Dist_state.add_processor st v) g0;
  Fg_graph.Adjacency.iter_edges (fun u v -> Fg_sim.Dist_state.add_edge st u v) g0;
  let narrate line = Format.printf "  coordinator: %s@." line in
  Format.printf "-- delete 0@.";
  let s1 = Fg_sim.Dist_protocol.delete ~debug:narrate st 0 ~n_seen:9 in
  Format.printf "   cost: %d rounds, %d messages, %d bits@.@." s1.Fg_sim.Netsim.rounds
    s1.Fg_sim.Netsim.messages s1.Fg_sim.Netsim.total_bits;
  Format.printf "-- delete 1@.";
  let s2 = Fg_sim.Dist_protocol.delete ~debug:narrate st 1 ~n_seen:9 in
  Format.printf "   cost: %d rounds, %d messages, %d bits@.@." s2.Fg_sim.Netsim.rounds
    s2.Fg_sim.Netsim.messages s2.Fg_sim.Netsim.total_bits;
  (match Fg_sim.Dist_state.check st with
  | [] -> Format.printf "per-processor state: structurally valid@."
  | errs -> List.iter (Format.printf "violation: %s@.") errs);

  (* full engine: same attack, cross-checked against the centralized
     implementation, then once more under asynchronous delivery *)
  let eng = De.create (Fg_graph.Adjacency.copy g0) in
  ignore (De.delete eng 0);
  ignore (De.delete eng 1);
  Format.printf "cross-check vs centralized engine: %s@."
    (match De.verify eng with [] -> "identical healing" | e :: _ -> e);

  let st2 = Fg_sim.Dist_state.create () in
  Fg_graph.Adjacency.iter_nodes (fun v -> Fg_sim.Dist_state.add_processor st2 v) g0;
  Fg_graph.Adjacency.iter_edges (fun u v -> Fg_sim.Dist_state.add_edge st2 u v) g0;
  let discipline = Fg_sim.Netsim.Asynchronous (Fg_graph.Rng.create 3, 5) in
  let a1 = Fg_sim.Dist_protocol.delete ~discipline st2 0 ~n_seen:9 in
  let a2 = Fg_sim.Dist_protocol.delete ~discipline st2 1 ~n_seen:9 in
  Format.printf
    "asynchronous network (delays 1..5, reordering): still valid: %b;@ rounds \
     stretch to %d and %d@."
    (Fg_sim.Dist_state.check st2 = [])
    a1.Fg_sim.Netsim.rounds a2.Fg_sim.Netsim.rounds
