(* Visualize a healing sequence.

   Writes Graphviz DOT snapshots of the network before and after each
   deletion of an adversarial attack, highlighting the processors that are
   currently simulating helper nodes. Render with e.g.
     dot -Tpng heal_2.dot -o heal_2.png

   Run with: dune exec examples/visualize_heal.exe -- [outdir] *)

module Fg = Fg_core.Forgiving_graph
module G = Fg_graph.Adjacency

let helpers_of fg =
  List.fold_left
    (fun acc v ->
      if Fg.helper_load fg v > 0 then Fg_graph.Node_id.Set.add v acc else acc)
    Fg_graph.Node_id.Set.empty (Fg.live_nodes fg)

let () =
  let outdir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "heal_snapshots" in
  if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
  let rng = Fg_graph.Rng.create 11 in
  let g0 = Fg_graph.Generators.erdos_renyi rng 24 0.14 in
  let fg = Fg.of_graph g0 in
  let snapshot name =
    let path = Filename.concat outdir (name ^ ".dot") in
    Fg_graph.Graph_io.write_file path
      (Fg_graph.Graph_io.to_dot ~highlight:(helpers_of fg) (Fg.graph fg));
    Format.printf "wrote %s (%d nodes, %d edges, %d simulating helpers)@." path
      (G.num_nodes (Fg.graph fg))
      (G.num_edges (Fg.graph fg))
      (Fg_graph.Node_id.Set.cardinal (helpers_of fg))
  in
  snapshot "heal_0_initial";
  (* the adversary takes out the three biggest hubs, one per step *)
  let steps = 3 in
  for step = 1 to steps do
    let g = Fg.graph fg in
    let hub =
      List.fold_left
        (fun acc v ->
          match acc with
          | None -> Some v
          | Some b -> if G.degree g v > G.degree g b then Some v else acc)
        None (Fg.live_nodes fg)
    in
    match hub with
    | None -> ()
    | Some v ->
      Format.printf "step %d: adversary deletes hub %d (degree %d)@." step v
        (G.degree g v);
      Fg.delete fg v;
      snapshot (Printf.sprintf "heal_%d_after_deleting_%d" step v)
  done;
  (match Fg_core.Invariants.check fg with
  | [] -> Format.printf "all invariants hold; red nodes simulate helpers@."
  | errs -> List.iter (Format.printf "violation: %s@.") errs);
  Format.printf "render with: dot -Tpng %s/heal_0_initial.dot -o initial.png@." outdir
