(* Cascading failures: the related-work motivation of Section 1.

   In the Motter-Lai model every node has a capacity proportional to its
   initial load (betweenness). Killing the biggest hubs of a power-law
   network overloads others, which fail in waves. The paper argues that
   passive defences "perform very poorly under adversarial attack" — here
   we pit no-defence and Hayashi-Miyazaki emergent rewiring against the
   Forgiving Graph as the healing layer.

   Run with: dune exec examples/cascade_defense.exe *)

module Cascade = Fg_baselines.Cascade

let () =
  let rng = Fg_graph.Rng.create 7 in
  let n = 150 in
  let g0 = Fg_graph.Generators.barabasi_albert rng n 2 in
  let attack = Cascade.top_degree_attack g0 3 in
  Format.printf "Barabasi-Albert network, n=%d; adversary kills the top-3 hubs %s@.@."
    n
    (String.concat ", " (List.map string_of_int attack));
  let defences =
    [
      ("no defence", Cascade.No_heal);
      ("emergent rewiring", Cascade.Rewire (Fg_graph.Rng.split rng));
      ("forgiving graph", Cascade.Forgiving);
    ]
  in
  List.iter
    (fun tolerance ->
      Format.printf "capacity tolerance alpha = %.2f@." tolerance;
      List.iter
        (fun (name, heal) ->
          let r =
            Cascade.run { Cascade.tolerance; max_waves = 50 } ~heal g0 ~attack
          in
          Format.printf "  %-18s surviving %4.0f%%  largest component %4.0f%%  \
                         (%d waves)@."
            name
            (100. *. r.Cascade.surviving_fraction)
            (100. *. r.Cascade.largest_component_fraction)
            r.Cascade.waves)
        defences;
      Format.printf "@.")
    [ 0.1; 0.5; 1.0 ]
