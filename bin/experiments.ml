(* Run the full experiment suite (E1-E10) or a subset given on the command
   line, printing every table. `dune exec bin/experiments.exe -- e3 e4`
   runs two; no arguments runs all. Pass `--csv` to also emit results/*.csv,
   `--trace FILE.jsonl` to stream a telemetry trace of the whole run,
   `--metrics` to print the global heal-path counters at the end, and
   `--domains N` to fan the metric kernels (stretch/diameter sweeps) across
   N domains — tables are identical for any N, only wall-clock changes. *)

open Fg_harness

let experiments : (string * string * (csv:bool -> bool)) list =
  [
    ( "e0",
      "workload characterisation",
      fun ~csv ->
        let s = E0_workloads.run ~csv () in
        s.E0_workloads.all_connected );
    ( "e1",
      "Lemma 1: haft structure laws",
      fun ~csv ->
        let s = E1_haft_laws.run ~csv () in
        s.E1_haft_laws.failures = 0 );
    ( "e2",
      "Figures 2/3/4/5/7/8 regenerated",
      fun ~csv:_ ->
        let s = E2_figures.run () in
        s.E2_figures.fig3_strip_sizes = [ 4; 2; 1 ]
        && s.E2_figures.fig5_is_complete && s.E2_figures.fig2_invariants_ok
        && s.E2_figures.fig7_invariants_ok
        && s.E2_figures.fig7_anchors > 0 );
    ( "e3",
      "Theorem 1.1: degree increase",
      fun ~csv ->
        let s = E3_degree.run ~csv () in
        s.E3_degree.all_within_4x );
    ( "e4",
      "Theorem 1.2: stretch",
      fun ~csv ->
        let s = E4_stretch.run ~csv () in
        s.E4_stretch.all_within_bound );
    ( "e5",
      "Lemma 4: repair cost (distributed sim)",
      fun ~csv ->
        let s = E5_cost.run ~csv () in
        s.E5_cost.max_msgs_norm < 20. && s.E5_cost.max_rounds_norm < 12. );
    ( "e6",
      "Theorem 2: lower-bound sandwich",
      fun ~csv ->
        let s = E6_lower_bound.run ~csv () in
        s.E6_lower_bound.all_sandwiched );
    ( "e7",
      "vs Forgiving Tree (PODC'08)",
      fun ~csv ->
        let s = E7_vs_forgiving_tree.run ~csv () in
        s.E7_vs_forgiving_tree.fg_beats_ft_stretch );
    ( "e8",
      "insert/delete churn",
      fun ~csv ->
        let s = E8_churn.run ~csv () in
        s.E8_churn.all_ok );
    ( "e9",
      "cascading failures under hub attack",
      fun ~csv ->
        let s = E9_cascade.run ~csv () in
        s.E9_cascade.fg_dominates );
    ( "e10",
      "ablations: trade-off frontier + merge cost",
      fun ~csv ->
        let s = E10_ablation.run ~csv () in
        s.E10_ablation.fg_on_frontier );
    ( "e11",
      "healing-edge span (Section 6 open problem)",
      fun ~csv ->
        let s = E11_span.run ~csv () in
        s.E11_span.expanders_small && s.E11_span.ring_large );
    ( "e12",
      "bounds at every instant (timeline)",
      fun ~csv ->
        let s = E12_timeline.run ~csv () in
        s.E12_timeline.violations = 0 );
    ( "e13",
      "batch failures vs deletion sequences",
      fun ~csv ->
        let s = E13_batch.run ~csv () in
        s.E13_batch.batch_never_worse );
    ( "e14",
      "Lemma 4 on the fully distributed protocol",
      fun ~csv ->
        let s = E14_dist_cost.run ~csv () in
        s.E14_dist_cost.all_verified
        && s.E14_dist_cost.max_msgs_norm < 30.
        && s.E14_dist_cost.max_rounds_norm < 20. );
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let csv = List.mem "--csv" args in
  let metrics = List.mem "--metrics" args in
  let rec split_opt name acc = function
    | flag :: value :: rest when flag = name -> (Some value, List.rev_append acc rest)
    | flag :: [] when flag = name ->
      Printf.eprintf "%s requires an argument\n" name;
      exit 2
    | a :: rest -> split_opt name (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let trace, args = split_opt "--trace" [] args in
  let domains, args = split_opt "--domains" [] args in
  let domains =
    Option.map
      (fun d ->
        match int_of_string_opt d with
        | Some d -> d
        | None ->
          prerr_endline "--domains requires an integer";
          exit 2)
      domains
  in
  let wanted = List.filter (fun a -> a <> "--csv" && a <> "--metrics") args in
  let selected =
    if wanted = [] then experiments
    else
      List.filter (fun (id, _, _) -> List.mem id wanted) experiments
  in
  if selected = [] then begin
    prerr_endline "unknown experiment ids; available:";
    List.iter (fun (id, desc, _) -> Printf.eprintf "  %s  %s\n" id desc) experiments;
    exit 2
  end;
  let t0 = Unix.gettimeofday () in
  let results =
    Fg_harness.Exp_common.with_observability ?trace ~metrics ?domains (fun () ->
        List.map
          (fun (id, desc, f) ->
            let start = Unix.gettimeofday () in
            let ok =
              Fg_obs.Trace.with_span id (fun sp ->
                  Fg_obs.Trace.attr sp "desc" (Fg_obs.Event.Str desc);
                  f ~csv)
            in
            (id, desc, ok, Unix.gettimeofday () -. start))
          selected)
  in
  print_newline ();
  print_endline "Summary";
  print_endline "=======";
  List.iter
    (fun (id, desc, ok, dt) ->
      Printf.printf "%-4s %-45s %s (%.1fs)\n" id desc
        (if ok then "PASS" else "CHECK FAILED")
        dt)
    results;
  Printf.printf "total %.1fs\n" (Unix.gettimeofday () -. t0);
  if List.exists (fun (_, _, ok, _) -> not ok) results then exit 1
