(* fg — command-line driver for the Forgiving Graph library.

   Subcommands:
     generate  emit a graph family as an edge list or DOT
     attack    run an adversarial deletion sweep under a healer, report metrics
     simulate  run deletions through the distributed simulator, report costs
     heal      read an edge list, delete given nodes, print the healed graph
     stretch   heal a deletion sweep, measure stretch vs the reference
     serve-bench  QPS/latency of snapshot readers under live churn *)

open Cmdliner
module Fg = Fg_core.Forgiving_graph
module Adjacency = Fg_graph.Adjacency

(* ---- shared args ---- *)

let seed_arg =
  let doc = "Random seed (experiments are deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let n_arg =
  let doc = "Target number of nodes." in
  Arg.(value & opt int 64 & info [ "n" ] ~doc)

let family_arg =
  let doc =
    "Graph family: " ^ String.concat ", " Fg_graph.Generators.names ^ "."
  in
  Arg.(value & opt string "er" & info [ "family" ] ~doc)

let make_graph family seed n =
  let rng = Fg_graph.Rng.create seed in
  try Fg_graph.Generators.by_name family rng n
  with Not_found ->
    Printf.eprintf "unknown family %S; available: %s\n" family
      (String.concat ", " Fg_graph.Generators.names);
    exit 2

(* ---- observability flags (attack / simulate / heal) ---- *)

let trace_arg =
  let doc =
    "Stream a JSONL trace (one span/counter event per line) to $(docv); \
     replay it with the $(b,trace) subcommand."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Record and print the global heal-path counters and histograms." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let domains_arg =
  let doc =
    "Number of OCaml domains for the metric/verification kernels (stretch, \
     diameter, invariant sweeps); clamped to the hardware count. Reports \
     are identical for any value — only wall-clock changes."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let with_obs trace metrics domains f =
  Fg_harness.Exp_common.with_observability ?trace ~metrics ~domains f

let shards_arg =
  let doc =
    "Run deletions through the sharded heal engine with $(docv) shards \
     (domain-per-shard; results are byte-identical for any value). 0 \
     (default) keeps the flat single-engine path."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"K" ~doc)

let round_arg =
  let doc =
    "Victims deleted simultaneously per sharded round (only with \
     $(b,--shards))."
  in
  Arg.(value & opt int 1 & info [ "round" ] ~docv:"R" ~doc)

(* Healer-shaped view of a sharded engine, so the adversary strategies
   (which are written against {!Fg_baselines.Healer.t}) can pick a whole
   round of victims against the pre-round topology: picks accumulate in
   [picked] and the shim presents them as already dead. *)
let sharded_shim eng picked =
  let fg = Fg_shard.Shard_engine.fg eng in
  {
    Fg_baselines.Healer.name = "fg";
    insert = (fun v nbrs -> Fg_shard.Shard_engine.insert eng v nbrs);
    delete = (fun v -> Fg_shard.Shard_engine.delete eng v);
    graph = (fun () -> Fg.graph fg);
    gprime = (fun () -> Fg.gprime fg);
    live_nodes =
      (fun () ->
        List.filter (fun v -> not (Hashtbl.mem picked v)) (Fg.live_nodes fg));
    is_alive = (fun v -> Fg.is_alive fg v && not (Hashtbl.mem picked v));
    init_messages = 0;
  }

let metrics_every_arg =
  let doc =
    "Dump the metrics registry in OpenMetrics exposition format every \
     $(docv) deletions (implies $(b,--metrics)). Each dump is one complete \
     exposure ending in $(b,# EOF); validate the stream with \
     $(b,fg metrics --validate)."
  in
  Arg.(value & opt int 0 & info [ "metrics-every" ] ~docv:"N" ~doc)

let metrics_out_arg =
  let doc =
    "Write the periodic OpenMetrics dumps to $(docv) (truncated) instead \
     of stdout."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* Periodic OpenMetrics dumps for long-running attack/simulate sweeps.
   [stat] (when tracing) lets the caller publish dashboard gauges — an
   [fg.stat] point that [fg top] picks out of the trace stream. Returns
   the per-event tick and a finalizer that emits one last exposure (so
   short runs still produce a complete, validatable stream). *)
let periodic_dumper ?(stat = fun () -> ()) ~every ~out () =
  if every <= 0 then ((fun () -> ()), fun () -> ())
  else begin
    let oc = Option.map open_out out in
    let events = ref 0 in
    let dump () =
      if Fg_obs.Trace.enabled () then stat ();
      let text = Fg_obs.Openmetrics.render Fg_obs.Metrics.global in
      match oc with
      | Some oc ->
        output_string oc text;
        flush oc
      | None -> print_string text
    in
    let tick () =
      incr events;
      if !events mod every = 0 then dump ()
    in
    let finish () =
      if !events mod every <> 0 || !events = 0 then dump ();
      Option.iter close_out oc
    in
    (tick, finish)
  end

(* ---- generate ---- *)

let generate family seed n dot =
  let g = make_graph family seed n in
  if dot then print_string (Fg_graph.Graph_io.to_dot g)
  else print_string (Fg_graph.Graph_io.to_edge_list g)

let generate_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of an edge list.")
  in
  let doc = "Generate a graph family." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(const generate $ family_arg $ seed_arg $ n_arg $ dot)

(* ---- attack ---- *)

(* Sharded attack driver: round-deletes of up to [round] victims through
   {!Fg_shard.Shard_engine}. The report block is byte-identical for any
   shard count (CI diffs --shards 1 against --shards 2). *)
let attack_sharded ~family ~seed ~n ~adversary:del ~fraction ~paranoid ~shards ~round
    ~tick =
  let g0 = make_graph family seed n in
  let eng = Fg_shard.Shard_engine.create ~shards g0 in
  let fg = Fg_shard.Shard_engine.fg eng in
  let rng = Fg_graph.Rng.create (seed + 1) in
  let goal = int_of_float (fraction *. float_of_int n) in
  let deleted = ref 0 in
  let continue = ref true in
  while !continue && !deleted < goal do
    (* pick the whole round against the pre-round topology *)
    let picked = Hashtbl.create 8 in
    let shim = sharded_shim eng picked in
    let nv = min round (goal - !deleted) in
    let victims = ref [] in
    for _ = 1 to nv do
      match Fg_adversary.Adversary.pick_victim del rng shim with
      | Some v ->
        Hashtbl.replace picked v ();
        victims := v :: !victims
      | None -> continue := false
    done;
    match List.rev !victims with
    | [] -> continue := false
    | victims ->
      if paranoid then begin
        let delta, _ = Fg_shard.Shard_engine.delete_round_delta eng victims in
        let errs =
          Fg_core.Invariants.check_delta fg delta
          @ Fg_shard.Shard_check.check_round fg ~delta
              ~info:(Fg_shard.Shard_engine.last_round eng)
        in
        if errs <> [] then begin
          List.iter (Printf.eprintf "paranoid: sharded round violated: %s\n") errs;
          exit 1
        end
      end
      else Fg_shard.Shard_engine.delete_round eng victims;
      deleted := !deleted + List.length victims;
      tick ()
  done;
  (fg, !deleted)

let attack family seed n healer adversary fraction paranoid trace metrics domains
    metrics_every metrics_out shards round =
  with_obs trace (metrics || metrics_every > 0) domains @@ fun () ->
  let del =
    try Fg_adversary.Adversary.deletion_of_name adversary
    with Invalid_argument _ ->
      Printf.eprintf "unknown adversary %S; available: %s\n" adversary
        (String.concat ", " Fg_adversary.Adversary.deletion_names);
      exit 2
  in
  if shards > 0 then begin
    if healer <> "fg" then begin
      Printf.eprintf "--shards runs the \"fg\" healer only (got %S)\n" healer;
      exit 2
    end;
    let tick, finish_dumps =
      periodic_dumper ~every:metrics_every ~out:metrics_out ()
    in
    let fg, deleted =
      attack_sharded ~family ~seed ~n ~adversary:del ~fraction ~paranoid ~shards
        ~round ~tick
    in
    finish_dumps ();
    let live = Fg.live_nodes fg in
    let graph = Fg.graph fg in
    let gprime = Fg.gprime fg in
    let deg = Fg_metrics.Degree_metric.measure ~graph ~gprime ~nodes:live in
    let str = Fg_metrics.Stretch.exact ~graph ~reference:gprime live in
    Format.printf "healer %s on %s(n=%d), adversary %s, deleted %d nodes@." healer
      family n adversary deleted;
    Format.printf "degree:  %a@." Fg_metrics.Degree_metric.pp_report deg;
    Format.printf "stretch: %a@." Fg_metrics.Stretch.pp_report str;
    Format.printf "bound ceil(log2 n_seen) = %d@."
      (Fg_harness.Exp_common.ceil_log2 (Adjacency.num_nodes gprime))
  end
  else begin
  let g0 = make_graph family seed n in
  let h =
    if paranoid then begin
      if healer <> "fg" then begin
        Printf.eprintf "--paranoid audits the \"fg\" healer only (got %S)\n" healer;
        exit 2
      end;
      Fg_baselines.Healer.forgiving_graph_paranoid
        ~on_violation:(fun errs ->
          List.iter (Printf.eprintf "paranoid: delta invariant violated: %s\n") errs;
          exit 1)
        g0
    end
    else
      try Fg_baselines.Registry.by_name healer g0
      with Not_found ->
        Printf.eprintf "unknown healer %S; available: %s\n" healer
          (String.concat ", " Fg_baselines.Registry.names);
        exit 2
  in
  let rng = Fg_graph.Rng.create (seed + 1) in
  let stat_rng = Fg_graph.Rng.create (seed + 2) in
  let stat () =
    let live = h.Fg_baselines.Healer.live_nodes () in
    let graph = h.Fg_baselines.Healer.graph () in
    let gprime = h.Fg_baselines.Healer.gprime () in
    let deg = Fg_metrics.Degree_metric.measure ~graph ~gprime ~nodes:live in
    let str =
      Fg_metrics.Stretch.sampled stat_rng ~k:1 ~graph ~reference:gprime live
    in
    let gc = Gc.quick_stat () in
    Fg_obs.Trace.point "fg.stat"
      ~attrs:
        [
          ("live", Fg_obs.Event.Int (List.length live));
          ("degree_max_ratio", Fg_obs.Event.Float deg.Fg_metrics.Degree_metric.max_ratio);
          ("degree_over_3x", Fg_obs.Event.Int deg.Fg_metrics.Degree_metric.over_3x);
          ("stretch_sample", Fg_obs.Event.Float str.Fg_metrics.Stretch.max_stretch);
          ("gc_minor_words", Fg_obs.Event.Float gc.Gc.minor_words);
          ("gc_major_collections", Fg_obs.Event.Int gc.Gc.major_collections);
        ]
  in
  let tick, finish_dumps =
    periodic_dumper ~stat ~every:metrics_every ~out:metrics_out ()
  in
  let victims =
    Fg_adversary.Churn.delete_fraction ~on_delete:(fun _ -> tick ()) rng h
      ~fraction ~del
  in
  finish_dumps ();
  let live = h.Fg_baselines.Healer.live_nodes () in
  let graph = h.Fg_baselines.Healer.graph () in
  let gprime = h.Fg_baselines.Healer.gprime () in
  let deg = Fg_metrics.Degree_metric.measure ~graph ~gprime ~nodes:live in
  let str = Fg_metrics.Stretch.exact ~graph ~reference:gprime live in
  Format.printf "healer %s on %s(n=%d), adversary %s, deleted %d nodes@."
    healer family n adversary (List.length victims);
  Format.printf "degree:  %a@." Fg_metrics.Degree_metric.pp_report deg;
  Format.printf "stretch: %a@." Fg_metrics.Stretch.pp_report str;
  Format.printf "bound ceil(log2 n_seen) = %d@."
    (Fg_harness.Exp_common.ceil_log2 (Adjacency.num_nodes gprime))
  end

let attack_cmd =
  let healer =
    Arg.(
      value & opt string "fg"
      & info [ "healer" ]
          ~doc:("Healing strategy: " ^ String.concat ", " Fg_baselines.Registry.names ^ "."))
  in
  let adversary =
    Arg.(
      value & opt string "maxdeg"
      & info [ "adversary" ]
          ~doc:
            ("Deletion strategy: "
            ^ String.concat ", " Fg_adversary.Adversary.deletion_names
            ^ "."))
  in
  let fraction =
    Arg.(value & opt float 0.5 & info [ "fraction" ] ~doc:"Fraction of nodes to delete.")
  in
  let paranoid =
    Arg.(
      value & flag
      & info [ "paranoid" ]
          ~doc:
            "Audit every event with the O(delta) invariant check \
             (fg healer only); exit 1 on the first violation. Output is \
             otherwise identical.")
  in
  let doc = "Adversarially delete nodes and report degree/stretch metrics." in
  Cmd.v
    (Cmd.info "attack" ~doc)
    Term.(
      const attack $ family_arg $ seed_arg $ n_arg $ healer $ adversary $ fraction
      $ paranoid $ trace_arg $ metrics_arg $ domains_arg $ metrics_every_arg
      $ metrics_out_arg $ shards_arg $ round_arg)

(* ---- simulate ---- *)

let simulate family seed n deletions distributed trace metrics domains
    metrics_every metrics_out shards round =
  with_obs trace (metrics || metrics_every > 0) domains @@ fun () ->
  let g0 = make_graph family seed n in
  let rng = Fg_graph.Rng.create (seed + 1) in
  let tick, finish_dumps = periodic_dumper ~every:metrics_every ~out:metrics_out () in
  if shards > 0 then begin
    (* sharded rounds; each heal trace replays through the per-processor
       protocol for its message/round cost *)
    let eng = Fg_shard.Shard_engine.create ~shards g0 in
    let fg = Fg_shard.Shard_engine.fg eng in
    let stats = ref [] in
    let count = ref 0 in
    while !count < deletions do
      let live = Fg.live_nodes fg in
      let nv = min round (min (deletions - !count) (List.length live - 2)) in
      if nv <= 0 then count := deletions
      else begin
        let victims =
          Array.to_list (Fg_graph.Rng.sample rng nv (Array.of_list live))
        in
        let traces = Fg_shard.Shard_engine.delete_round_traced eng victims in
        let n_seen = Fg.num_seen fg in
        List.iter
          (fun tr ->
            let s = Fg_sim.Protocol.replay ~trace:tr ~n_seen in
            Format.printf "%a@." Fg_sim.Netsim.pp_stats s;
            stats := s :: !stats)
          traces;
        count := !count + nv;
        tick ()
      end
    done;
    finish_dumps ();
    Format.printf "@.%d sharded rounds over %d shards, %d repair groups@."
      (Fg_shard.Shard_engine.rounds eng)
      shards (List.length !stats)
  end
  else if distributed then begin
    (* full per-processor protocol, verified after every repair *)
    let eng = Fg_sim.Dist_engine.create g0 in
    let count = ref 0 in
    while !count < deletions do
      let live = Fg.live_nodes (Fg_sim.Dist_engine.reference eng) in
      if List.length live <= 2 then count := deletions
      else begin
        let v = Fg_graph.Rng.pick rng live in
        let s = Fg_sim.Dist_engine.delete eng v in
        Format.printf "del %d: %a (verified: %b)@." v Fg_sim.Netsim.pp_stats s
          (Fg_sim.Dist_engine.verify eng = []);
        incr count;
        tick ()
      end
    done;
    finish_dumps ()
  end
  else begin
  let eng = Fg_sim.Engine.create g0 in
  let count = ref 0 in
  while !count < deletions do
    let fg = Fg_sim.Engine.fg eng in
    let live = Fg.live_nodes fg in
    if List.length live <= 2 then count := deletions
    else begin
      let v = Fg_graph.Rng.pick rng live in
      let c = Fg_sim.Engine.delete eng v in
      Format.printf "%a@." Fg_sim.Engine.pp_cost c;
      incr count;
      tick ()
    end
  done;
  finish_dumps ();
  let costs = Fg_sim.Engine.costs eng in
  let summarize name field =
    match Fg_metrics.Summary.of_ints_opt (List.map field costs) with
    | Some s -> Format.printf "%s %a@." name Fg_metrics.Summary.pp s
    | None -> ()
  in
  Format.printf "@.";
  summarize "messages:" (fun c -> c.Fg_sim.Engine.messages);
  summarize "rounds:  " (fun c -> c.Fg_sim.Engine.rounds)
  end

let simulate_cmd =
  let deletions =
    Arg.(value & opt int 10 & info [ "deletions" ] ~doc:"How many random deletions.")
  in
  let distributed =
    Arg.(
      value & flag
      & info [ "distributed" ]
          ~doc:
            "Run the full per-processor protocol (Dist_engine) instead of the              trace-replay cost model, verifying each repair.")
  in
  let doc = "Run deletions through the distributed simulator and report costs." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ family_arg $ seed_arg $ n_arg $ deletions $ distributed
      $ trace_arg $ metrics_arg $ domains_arg $ metrics_every_arg
      $ metrics_out_arg $ shards_arg $ round_arg)

(* ---- heal ---- *)

let heal path victims dot trace metrics domains =
  with_obs trace metrics domains @@ fun () ->
  let text = Fg_graph.Graph_io.read_file path in
  let g0 = Fg_graph.Graph_io.of_edge_list text in
  let fg = Fg.of_graph g0 in
  List.iter
    (fun v ->
      if Fg.is_alive fg v then Fg.delete fg v
      else Printf.eprintf "warning: node %d not live, skipped\n" v)
    victims;
  let g = Fg.graph fg in
  if dot then print_string (Fg_graph.Graph_io.to_dot g)
  else print_string (Fg_graph.Graph_io.to_edge_list g);
  match Fg_core.Invariants.check fg with
  | [] -> ()
  | errs ->
    List.iter (Printf.eprintf "invariant violation: %s\n") errs;
    exit 1

let heal_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"EDGELIST" ~doc:"Input graph.")
  in
  let victims =
    Arg.(value & opt (list int) [] & info [ "delete" ] ~doc:"Node ids to delete, in order.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit DOT.") in
  let doc = "Heal an explicit graph after deleting the given nodes." in
  Cmd.v
    (Cmd.info "heal" ~doc)
    Term.(const heal $ path $ victims $ dot $ trace_arg $ metrics_arg $ domains_arg)

(* ---- stretch ---- *)

let stretch family seed n adversary fraction sample sample_seed exact trace metrics domains =
  with_obs trace metrics domains @@ fun () ->
  let del =
    try Fg_adversary.Adversary.deletion_of_name adversary
    with Invalid_argument _ ->
      Printf.eprintf "unknown adversary %S; available: %s\n" adversary
        (String.concat ", " Fg_adversary.Adversary.deletion_names);
      exit 2
  in
  let g0 = make_graph family seed n in
  let h = Fg_baselines.Registry.by_name "fg" g0 in
  let rng = Fg_graph.Rng.create (seed + 1) in
  let victims = Fg_adversary.Churn.delete_fraction rng h ~fraction ~del in
  let live = h.Fg_baselines.Healer.live_nodes () in
  let graph = h.Fg_baselines.Healer.graph () in
  let gprime = h.Fg_baselines.Healer.gprime () in
  let t0 = Fg_obs.Trace.wall_clock () in
  let r =
    if exact || sample = 0 then
      Fg_metrics.Stretch.exact ~graph ~reference:gprime live
    else
      Fg_metrics.Stretch.sampled
        (Fg_graph.Rng.create (Option.value sample_seed ~default:(seed + 2)))
        ~k:sample ~graph ~reference:gprime live
  in
  let dt = Fg_obs.Trace.wall_clock () -. t0 in
  Format.printf "stretch on %s(n=%d), adversary %s, deleted %d of %d nodes@."
    family n adversary (List.length victims) n;
  Format.printf "stretch: %a@." Fg_metrics.Stretch.pp_report r;
  Format.printf "bound ceil(log2 n_seen) = %d; measured in %.2f s@."
    (Fg_harness.Exp_common.ceil_log2 (Adjacency.num_nodes gprime))
    dt

let stretch_cmd =
  let adversary =
    Arg.(
      value & opt string "random"
      & info [ "adversary" ]
          ~doc:
            ("Deletion strategy: "
            ^ String.concat ", " Fg_adversary.Adversary.deletion_names
            ^ "."))
  in
  let fraction =
    Arg.(value & opt float 0.125 & info [ "fraction" ] ~doc:"Fraction of nodes to delete.")
  in
  let sample =
    Arg.(
      value & opt int 0
      & info [ "sample" ] ~docv:"K"
          ~doc:"Measure from $(docv) sampled sources instead of all pairs \
                (0 = all pairs).")
  in
  let sample_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-seed" ] ~docv:"SEED"
          ~doc:
            "Seed for the sampled-mode source draw, independent of the \
             graph/adversary $(b,--seed) (default: derived from \
             $(b,--seed), reproducing the historical draw). Lets two runs \
             share a graph and attack while varying only the sample, or \
             vice versa.")
  in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:"Force the all-pairs measurement (the default; overrides \
                $(b,--sample)).")
  in
  let doc =
    "Heal an adversarial deletion sweep, then measure stretch of the healed \
     graph against its reference."
  in
  Cmd.v
    (Cmd.info "stretch" ~doc)
    Term.(
      const stretch $ family_arg $ seed_arg $ n_arg $ adversary $ fraction
      $ sample $ sample_seed $ exact $ trace_arg $ metrics_arg $ domains_arg)

(* ---- serve-bench ---- *)

let serve_bench family seed n readers duration churn_rate sample_pairs mix_s metrics_out trace
    metrics shards =
  let mix =
    match Fg_serve.Loadgen.mix_of_string mix_s with
    | Ok m -> m
    | Error e ->
      Printf.eprintf "error: bad --mix: %s\n" e;
      exit 2
  in
  let record = metrics || Option.is_some metrics_out in
  with_obs trace record 1 @@ fun () ->
  let g0 = make_graph family seed n in
  (* With --shards, churn deletes run through the sharded engine. The
     reader domains own the worker pool for the whole run, so the engine
     is pinned to coordinator-side (serial-only) rounds — same result. *)
  let sharded =
    if shards > 0 then begin
      let eng = Fg_shard.Shard_engine.create ~shards g0 in
      Fg_shard.Shard_engine.set_serial_only eng true;
      Some eng
    end
    else None
  in
  let fg =
    match sharded with
    | Some eng -> Fg_shard.Shard_engine.fg eng
    | None -> Fg.of_graph g0
  in
  let delete =
    match sharded with
    | Some eng -> Some (fun _fg v -> Fg_shard.Shard_engine.delete eng v)
    | None -> None
  in
  let cfg =
    {
      Fg_serve.Loadgen.readers;
      duration;
      churn_rate;
      mix;
      sample_pairs;
      min_live = max 2 (n / 4);
      seed;
    }
  in
  let report = Fg_serve.Loadgen.run ?delete fg cfg in
  Format.printf "serve-bench %s(n=%d) churn=%.0f/s@.%a@." family n churn_rate
    Fg_serve.Loadgen.pp_report report;
  Option.iter
    (fun eng ->
      Fg_shard.Shard_engine.publish_shards eng;
      let stats = Fg_shard.Shard_engine.stats eng in
      Format.printf "shards: %d rounds over %d shards, heals per shard [%s]@."
        (Fg_shard.Shard_engine.rounds eng)
        (Fg_shard.Shard_engine.shards eng)
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun s -> string_of_int s.Fg_shard.Shard_engine.heals)
                 stats))))
    sharded;
  (* one complete exposure of the global registry — includes the
     serve.<class>_ns histograms the readers recorded *)
  Option.iter
    (fun path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Fg_obs.Openmetrics.render Fg_obs.Metrics.global)))
    metrics_out

let serve_bench_cmd =
  let readers =
    Arg.(
      value & opt int 2
      & info [ "readers" ] ~docv:"N"
          ~doc:"Reader domains issuing queries (clamped to the worker-pool size).")
  in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"SEC" ~doc:"Seconds of load.")
  in
  let churn =
    Arg.(
      value & opt float 20.0
      & info [ "churn-rate" ] ~docv:"DEL/SEC"
          ~doc:
            "Adversarial deletions per second on the writer domain; each \
             deletion heals and publishes a new snapshot generation (0 = \
             static graph).")
  in
  let pairs =
    Arg.(
      value & opt int 4
      & info [ "sample-pairs" ] ~docv:"K" ~doc:"BFS sources per stretch-sample query.")
  in
  let mix =
    Arg.(
      value
      & opt string "distance=6,path=1,stretch=1,degree=2"
      & info [ "mix" ] ~docv:"CLASS=W,.."
          ~doc:
            "Query-class weights over distance, path, stretch, degree \
             (closed loop: each reader draws the next class by weight).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write one final OpenMetrics exposure (per-class serve.*_ns \
             histograms included) to $(docv); implies $(b,--metrics). \
             Validate with $(b,fg metrics --validate).")
  in
  let doc =
    "Serve queries from reader domains against pinned snapshots while the \
     adversary deletes at a fixed rate: queries/sec and tail latency under \
     churn (the paper's repair-vs-usage concurrency, measured)."
  in
  Cmd.v
    (Cmd.info "serve-bench" ~doc)
    Term.(
      const serve_bench $ family_arg $ seed_arg $ n_arg $ readers $ duration $ churn $ pairs
      $ mix $ metrics_out $ trace_arg $ metrics_arg $ shards_arg)

(* ---- trace (replay a JSONL telemetry file) ---- *)

let trace_report path =
  match Fg_obs.Replay.table_of_file path with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 1
  | Ok rows ->
    if rows = [] then print_endline "(no spans in trace)"
    else Format.printf "%a" Fg_obs.Replay.pp_table rows

let trace_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE.jsonl" ~doc:"JSONL trace written by --trace.")
  in
  let doc = "Replay a JSONL trace into a per-phase cost table." in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const trace_report $ path)

(* ---- metrics (registry report / OpenMetrics export / validation) ---- *)

let read_all_in path =
  if path = "-" then In_channel.input_all stdin
  else In_channel.with_open_bin path In_channel.input_all

(* Rebuild a metrics registry from a JSONL trace: span durations land in
   per-phase HDR histograms ([<span>_ns]), span counters sum into
   counters, and points count under [point.<name>]. *)
let registry_of_trace events =
  let reg = Fg_obs.Metrics.create () in
  List.iter
    (fun e ->
      match e with
      | Fg_obs.Event.Span_end { name; dur; counters; _ } ->
        Fg_obs.Hdr.record_sharded
          (Fg_obs.Metrics.hdr_in reg (name ^ "_ns"))
          (int_of_float (dur *. 1e9));
        List.iter (fun (k, n) -> Fg_obs.Metrics.incr_in reg ~n k) counters
      | Fg_obs.Event.Point { name; _ } ->
        Fg_obs.Metrics.incr_in reg ("point." ^ name)
      | Fg_obs.Event.Span_start _ -> ())
    events;
  reg

let metrics_report trace_path openmetrics out validate =
  match validate with
  | Some path -> (
    let text = read_all_in path in
    match Fg_obs.Openmetrics.validate text with
    | Ok () -> print_endline "openmetrics: valid"
    | Error e ->
      Printf.eprintf "openmetrics: invalid: %s\n" e;
      exit 1)
  | None -> (
    match trace_path with
    | None ->
      Printf.eprintf
        "error: give a TRACE.jsonl to report on, or --validate FILE\n";
      exit 2
    | Some path -> (
      let events =
        if path = "-" then
          Fg_obs.Replay.parse_lines
            (String.split_on_char '\n' (In_channel.input_all stdin))
        else Fg_obs.Replay.load path
      in
      match events with
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
      | Ok events ->
        let reg = registry_of_trace events in
        let text =
          if openmetrics then Fg_obs.Openmetrics.render reg
          else Format.asprintf "%a" Fg_obs.Metrics.pp reg
        in
        (match out with
        | None -> print_string text
        | Some f -> Out_channel.with_open_bin f (fun oc -> output_string oc text))))

let metrics_cmd =
  let trace_path =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TRACE.jsonl"
          ~doc:
            "JSONL trace written by --trace ($(b,-) for stdin); aggregated \
             into a registry.")
  in
  let openmetrics =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:"Emit OpenMetrics text exposition instead of the human report.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the report to $(docv).")
  in
  let validate =
    Arg.(
      value
      & opt (some string) None
      & info [ "validate" ] ~docv:"FILE"
          ~doc:
            "Check $(docv) ($(b,-) for stdin) against the OpenMetrics \
             exposition grammar; exit 1 if invalid. Accepts a stream of \
             exposures as produced by --metrics-every.")
  in
  let doc =
    "Aggregate a trace into metrics, export OpenMetrics, or validate an \
     exposition."
  in
  Cmd.v
    (Cmd.info "metrics" ~doc)
    Term.(const metrics_report $ trace_path $ openmetrics $ out $ validate)

(* ---- top (live dashboard over a trace stream) ---- *)

let top path interval frames window plain =
  let agg = Fg_obs.Top.create ~window () in
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "error: cannot open %s: %s\n" path (Unix.error_message e);
      exit 1
  in
  let chunk = Bytes.create 65536 in
  let pending = Buffer.create 4096 in
  (* drain whatever the writer has appended since the last frame, feeding
     only complete lines; a partial tail line stays buffered *)
  let drain () =
    let rec read_all () =
      let k = Unix.read fd chunk 0 (Bytes.length chunk) in
      if k > 0 then begin
        Buffer.add_subbytes pending chunk 0 k;
        read_all ()
      end
    in
    read_all ();
    let s = Buffer.contents pending in
    let rec lines start =
      match String.index_from_opt s start '\n' with
      | None -> start
      | Some nl ->
        let line = String.sub s start (nl - start) in
        (if String.trim line <> "" then
           match Fg_obs.Replay.parse_line line with
           | Ok e -> Fg_obs.Top.feed agg e
           | Error _ -> () (* tolerate foreign/corrupt lines while tailing *));
        lines (nl + 1)
    in
    let consumed = lines 0 in
    if consumed > 0 then begin
      let rest = String.sub s consumed (String.length s - consumed) in
      Buffer.clear pending;
      Buffer.add_string pending rest
    end
  in
  let frame () =
    drain ();
    print_string (Fg_obs.Top.render ~ansi:(not plain) agg);
    flush stdout
  in
  if frames <= 0 then
    while true do
      frame ();
      Unix.sleepf interval
    done
  else
    for i = 1 to frames do
      frame ();
      if i < frames then Unix.sleepf interval
    done;
  Unix.close fd

let top_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE.jsonl"
          ~doc:
            "JSONL trace to tail — typically the --trace file of a running \
             attack/simulate.")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SEC" ~doc:"Seconds between redraws.")
  in
  let frames =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N"
          ~doc:"Render $(docv) frames then exit (0 = run until interrupted).")
  in
  let window =
    Arg.(
      value & opt float 10.0
      & info [ "window" ] ~docv:"SEC"
          ~doc:"Trailing stream-time window for the heals/deltas rates.")
  in
  let plain =
    Arg.(
      value & flag
      & info [ "plain" ]
          ~doc:"No ANSI clear-screen between frames (for logs and tests).")
  in
  let doc = "Live terminal dashboard over a telemetry trace stream." in
  Cmd.v
    (Cmd.info "top" ~doc)
    Term.(const top $ path $ interval $ frames $ window $ plain)

(* ---- route ---- *)

let route_cmd_run family seed n victims src dst =
  let g0 = make_graph family seed n in
  let fg = Fg.of_graph g0 in
  List.iter
    (fun v ->
      if Fg.is_alive fg v then Fg.delete fg v
      else Printf.eprintf "warning: node %d not live, skipped\n" v)
    victims;
  if not (Fg.is_alive fg src && Fg.is_alive fg dst) then begin
    Printf.eprintf "error: route endpoints must be live\n";
    exit 1
  end;
  match Fg_core.Routing.route fg src dst with
  | None -> Format.printf "%d and %d are not connected in G'@." src dst
  | Some walk ->
    Format.printf "route: %s@."
      (String.concat " -> " (List.map string_of_int walk));
    let d' = Option.get (Fg_graph.Bfs.distance (Fg.gprime fg) src dst) in
    let d = Option.get (Fg_graph.Bfs.distance (Fg.graph fg) src dst) in
    Format.printf "length %d; optimal in G: %d; G' distance: %d; bound: %d@."
      (List.length walk - 1)
      d d'
      (d' * Fg.stretch_bound fg)

let route_cmd =
  let victims =
    Arg.(value & opt (list int) [] & info [ "delete" ] ~doc:"Node ids to delete first.")
  in
  let src = Arg.(required & pos 0 (some int) None & info [] ~docv:"SRC") in
  let dst = Arg.(required & pos 1 (some int) None & info [] ~docv:"DST") in
  let doc = "Stitch a route through the reconstruction trees (Theorem 1.2)." in
  Cmd.v
    (Cmd.info "route" ~doc)
    Term.(const route_cmd_run $ family_arg $ seed_arg $ n_arg $ victims $ src $ dst)

let () =
  let doc = "The Forgiving Graph: self-healing networks under adversarial attack." in
  let info = Cmd.info "fg" ~version:"1.0.0" ~doc in
  (* cmdliner only knows single-char names as short options; accept the
     common [--n 256] spelling too *)
  let argv = Array.map (fun a -> if a = "--n" then "-n" else a) Sys.argv in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [
            generate_cmd;
            attack_cmd;
            simulate_cmd;
            heal_cmd;
            stretch_cmd;
            serve_bench_cmd;
            route_cmd;
            trace_cmd;
            metrics_cmd;
            top_cmd;
          ]))
