(* fg — command-line driver for the Forgiving Graph library.

   Subcommands:
     generate  emit a graph family as an edge list or DOT
     attack    run an adversarial deletion sweep under a healer, report metrics
     simulate  run deletions through the distributed simulator, report costs
     heal      read an edge list, delete given nodes, print the healed graph *)

open Cmdliner
module Fg = Fg_core.Forgiving_graph
module Adjacency = Fg_graph.Adjacency

(* ---- shared args ---- *)

let seed_arg =
  let doc = "Random seed (experiments are deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let n_arg =
  let doc = "Target number of nodes." in
  Arg.(value & opt int 64 & info [ "n" ] ~doc)

let family_arg =
  let doc =
    "Graph family: " ^ String.concat ", " Fg_graph.Generators.names ^ "."
  in
  Arg.(value & opt string "er" & info [ "family" ] ~doc)

let make_graph family seed n =
  let rng = Fg_graph.Rng.create seed in
  try Fg_graph.Generators.by_name family rng n
  with Not_found ->
    Printf.eprintf "unknown family %S; available: %s\n" family
      (String.concat ", " Fg_graph.Generators.names);
    exit 2

(* ---- observability flags (attack / simulate / heal) ---- *)

let trace_arg =
  let doc =
    "Stream a JSONL trace (one span/counter event per line) to $(docv); \
     replay it with the $(b,trace) subcommand."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Record and print the global heal-path counters and histograms." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let domains_arg =
  let doc =
    "Number of OCaml domains for the metric/verification kernels (stretch, \
     diameter, invariant sweeps); clamped to the hardware count. Reports \
     are identical for any value — only wall-clock changes."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let with_obs trace metrics domains f =
  Fg_harness.Exp_common.with_observability ?trace ~metrics ~domains f

(* ---- generate ---- *)

let generate family seed n dot =
  let g = make_graph family seed n in
  if dot then print_string (Fg_graph.Graph_io.to_dot g)
  else print_string (Fg_graph.Graph_io.to_edge_list g)

let generate_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of an edge list.")
  in
  let doc = "Generate a graph family." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(const generate $ family_arg $ seed_arg $ n_arg $ dot)

(* ---- attack ---- *)

let attack family seed n healer adversary fraction paranoid trace metrics domains =
  with_obs trace metrics domains @@ fun () ->
  let del =
    try Fg_adversary.Adversary.deletion_of_name adversary
    with Invalid_argument _ ->
      Printf.eprintf "unknown adversary %S; available: %s\n" adversary
        (String.concat ", " Fg_adversary.Adversary.deletion_names);
      exit 2
  in
  let g0 = make_graph family seed n in
  let h =
    if paranoid then begin
      if healer <> "fg" then begin
        Printf.eprintf "--paranoid audits the \"fg\" healer only (got %S)\n" healer;
        exit 2
      end;
      Fg_baselines.Healer.forgiving_graph_paranoid
        ~on_violation:(fun errs ->
          List.iter (Printf.eprintf "paranoid: delta invariant violated: %s\n") errs;
          exit 1)
        g0
    end
    else
      try Fg_baselines.Registry.by_name healer g0
      with Not_found ->
        Printf.eprintf "unknown healer %S; available: %s\n" healer
          (String.concat ", " Fg_baselines.Registry.names);
        exit 2
  in
  let rng = Fg_graph.Rng.create (seed + 1) in
  let victims = Fg_adversary.Churn.delete_fraction rng h ~fraction ~del in
  let live = h.Fg_baselines.Healer.live_nodes () in
  let graph = h.Fg_baselines.Healer.graph () in
  let gprime = h.Fg_baselines.Healer.gprime () in
  let deg = Fg_metrics.Degree_metric.measure ~graph ~gprime ~nodes:live in
  let str = Fg_metrics.Stretch.exact ~graph ~reference:gprime live in
  Format.printf "healer %s on %s(n=%d), adversary %s, deleted %d nodes@."
    healer family n adversary (List.length victims);
  Format.printf "degree:  %a@." Fg_metrics.Degree_metric.pp_report deg;
  Format.printf "stretch: %a@." Fg_metrics.Stretch.pp_report str;
  Format.printf "bound ceil(log2 n_seen) = %d@."
    (Fg_harness.Exp_common.ceil_log2 (Adjacency.num_nodes gprime))

let attack_cmd =
  let healer =
    Arg.(
      value & opt string "fg"
      & info [ "healer" ]
          ~doc:("Healing strategy: " ^ String.concat ", " Fg_baselines.Registry.names ^ "."))
  in
  let adversary =
    Arg.(
      value & opt string "maxdeg"
      & info [ "adversary" ]
          ~doc:
            ("Deletion strategy: "
            ^ String.concat ", " Fg_adversary.Adversary.deletion_names
            ^ "."))
  in
  let fraction =
    Arg.(value & opt float 0.5 & info [ "fraction" ] ~doc:"Fraction of nodes to delete.")
  in
  let paranoid =
    Arg.(
      value & flag
      & info [ "paranoid" ]
          ~doc:
            "Audit every event with the O(delta) invariant check \
             (fg healer only); exit 1 on the first violation. Output is \
             otherwise identical.")
  in
  let doc = "Adversarially delete nodes and report degree/stretch metrics." in
  Cmd.v
    (Cmd.info "attack" ~doc)
    Term.(
      const attack $ family_arg $ seed_arg $ n_arg $ healer $ adversary $ fraction
      $ paranoid $ trace_arg $ metrics_arg $ domains_arg)

(* ---- simulate ---- *)

let simulate family seed n deletions distributed trace metrics domains =
  with_obs trace metrics domains @@ fun () ->
  let g0 = make_graph family seed n in
  let rng = Fg_graph.Rng.create (seed + 1) in
  if distributed then begin
    (* full per-processor protocol, verified after every repair *)
    let eng = Fg_sim.Dist_engine.create g0 in
    let count = ref 0 in
    while !count < deletions do
      let live = Fg.live_nodes (Fg_sim.Dist_engine.reference eng) in
      if List.length live <= 2 then count := deletions
      else begin
        let v = Fg_graph.Rng.pick rng live in
        let s = Fg_sim.Dist_engine.delete eng v in
        Format.printf "del %d: %a (verified: %b)@." v Fg_sim.Netsim.pp_stats s
          (Fg_sim.Dist_engine.verify eng = []);
        incr count
      end
    done
  end
  else begin
  let eng = Fg_sim.Engine.create g0 in
  let count = ref 0 in
  while !count < deletions do
    let fg = Fg_sim.Engine.fg eng in
    let live = Fg.live_nodes fg in
    if List.length live <= 2 then count := deletions
    else begin
      let v = Fg_graph.Rng.pick rng live in
      let c = Fg_sim.Engine.delete eng v in
      Format.printf "%a@." Fg_sim.Engine.pp_cost c;
      incr count
    end
  done;
  let costs = Fg_sim.Engine.costs eng in
  let summarize name field =
    match Fg_metrics.Summary.of_ints_opt (List.map field costs) with
    | Some s -> Format.printf "%s %a@." name Fg_metrics.Summary.pp s
    | None -> ()
  in
  Format.printf "@.";
  summarize "messages:" (fun c -> c.Fg_sim.Engine.messages);
  summarize "rounds:  " (fun c -> c.Fg_sim.Engine.rounds)
  end

let simulate_cmd =
  let deletions =
    Arg.(value & opt int 10 & info [ "deletions" ] ~doc:"How many random deletions.")
  in
  let distributed =
    Arg.(
      value & flag
      & info [ "distributed" ]
          ~doc:
            "Run the full per-processor protocol (Dist_engine) instead of the              trace-replay cost model, verifying each repair.")
  in
  let doc = "Run deletions through the distributed simulator and report costs." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ family_arg $ seed_arg $ n_arg $ deletions $ distributed
      $ trace_arg $ metrics_arg $ domains_arg)

(* ---- heal ---- *)

let heal path victims dot trace metrics domains =
  with_obs trace metrics domains @@ fun () ->
  let text = Fg_graph.Graph_io.read_file path in
  let g0 = Fg_graph.Graph_io.of_edge_list text in
  let fg = Fg.of_graph g0 in
  List.iter
    (fun v ->
      if Fg.is_alive fg v then Fg.delete fg v
      else Printf.eprintf "warning: node %d not live, skipped\n" v)
    victims;
  let g = Fg.graph fg in
  if dot then print_string (Fg_graph.Graph_io.to_dot g)
  else print_string (Fg_graph.Graph_io.to_edge_list g);
  match Fg_core.Invariants.check fg with
  | [] -> ()
  | errs ->
    List.iter (Printf.eprintf "invariant violation: %s\n") errs;
    exit 1

let heal_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"EDGELIST" ~doc:"Input graph.")
  in
  let victims =
    Arg.(value & opt (list int) [] & info [ "delete" ] ~doc:"Node ids to delete, in order.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit DOT.") in
  let doc = "Heal an explicit graph after deleting the given nodes." in
  Cmd.v
    (Cmd.info "heal" ~doc)
    Term.(const heal $ path $ victims $ dot $ trace_arg $ metrics_arg $ domains_arg)

(* ---- trace (replay a JSONL telemetry file) ---- *)

let trace_report path =
  match Fg_obs.Replay.table_of_file path with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 1
  | Ok rows ->
    if rows = [] then print_endline "(no spans in trace)"
    else Format.printf "%a" Fg_obs.Replay.pp_table rows

let trace_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE.jsonl" ~doc:"JSONL trace written by --trace.")
  in
  let doc = "Replay a JSONL trace into a per-phase cost table." in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const trace_report $ path)

(* ---- route ---- *)

let route_cmd_run family seed n victims src dst =
  let g0 = make_graph family seed n in
  let fg = Fg.of_graph g0 in
  List.iter
    (fun v ->
      if Fg.is_alive fg v then Fg.delete fg v
      else Printf.eprintf "warning: node %d not live, skipped\n" v)
    victims;
  if not (Fg.is_alive fg src && Fg.is_alive fg dst) then begin
    Printf.eprintf "error: route endpoints must be live\n";
    exit 1
  end;
  match Fg_core.Routing.route fg src dst with
  | None -> Format.printf "%d and %d are not connected in G'@." src dst
  | Some walk ->
    Format.printf "route: %s@."
      (String.concat " -> " (List.map string_of_int walk));
    let d' = Option.get (Fg_graph.Bfs.distance (Fg.gprime fg) src dst) in
    let d = Option.get (Fg_graph.Bfs.distance (Fg.graph fg) src dst) in
    Format.printf "length %d; optimal in G: %d; G' distance: %d; bound: %d@."
      (List.length walk - 1)
      d d'
      (d' * Fg.stretch_bound fg)

let route_cmd =
  let victims =
    Arg.(value & opt (list int) [] & info [ "delete" ] ~doc:"Node ids to delete first.")
  in
  let src = Arg.(required & pos 0 (some int) None & info [] ~docv:"SRC") in
  let dst = Arg.(required & pos 1 (some int) None & info [] ~docv:"DST") in
  let doc = "Stitch a route through the reconstruction trees (Theorem 1.2)." in
  Cmd.v
    (Cmd.info "route" ~doc)
    Term.(const route_cmd_run $ family_arg $ seed_arg $ n_arg $ victims $ src $ dst)

let () =
  let doc = "The Forgiving Graph: self-healing networks under adversarial attack." in
  let info = Cmd.info "fg" ~version:"1.0.0" ~doc in
  (* cmdliner only knows single-char names as short options; accept the
     common [--n 256] spelling too *)
  let argv = Array.map (fun a -> if a = "--n" then "-n" else a) Sys.argv in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [ generate_cmd; attack_cmd; simulate_cmd; heal_cmd; route_cmd; trace_cmd ]))
